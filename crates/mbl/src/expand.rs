//! Expansion of MBL expressions into sets of concrete queries (the semantics
//! of Appendix A).

use std::fmt;

use crate::ast::{block_name, BlockId, Expr, MemOp, Query};
use crate::parse::{parse, ParseError};

/// Error raised while expanding an MBL expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExpandError {
    /// The expression could not be parsed in the first place (only returned
    /// by [`expand_query`]).
    Parse(ParseError),
    /// A tag was applied to an expression that already contains tags, which
    /// Appendix A leaves undefined.
    DoubleTag {
        /// The block that already carried a tag.
        block: String,
    },
    /// The expansion would produce more queries than the given limit
    /// (misuse guard for deeply nested sets/powers).
    TooManyQueries {
        /// The limit that was exceeded.
        limit: usize,
    },
}

impl fmt::Display for ExpandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExpandError::Parse(e) => write!(f, "{e}"),
            ExpandError::DoubleTag { block } => {
                write!(f, "block {block} is tagged twice")
            }
            ExpandError::TooManyQueries { limit } => {
                write!(f, "expansion exceeds {limit} queries")
            }
        }
    }
}

impl std::error::Error for ExpandError {}

impl From<ParseError> for ExpandError {
    fn from(e: ParseError) -> Self {
        ExpandError::Parse(e)
    }
}

/// Upper bound on the number of queries a single expansion may produce.
const MAX_QUERIES: usize = 1 << 16;

/// Expands an already-parsed expression for a cache of the given
/// associativity.
///
/// # Errors
///
/// See [`ExpandError`].
pub fn expand(expr: &Expr, associativity: usize) -> Result<Vec<Query>, ExpandError> {
    let queries = expand_inner(expr, associativity)?;
    Ok(queries)
}

/// Parses and expands an MBL expression in one step.
///
/// # Errors
///
/// See [`ExpandError`].
pub fn expand_query(input: &str, associativity: usize) -> Result<Vec<Query>, ExpandError> {
    let expr = parse(input)?;
    expand(&expr, associativity)
}

fn guard(len: usize) -> Result<(), ExpandError> {
    if len > MAX_QUERIES {
        Err(ExpandError::TooManyQueries { limit: MAX_QUERIES })
    } else {
        Ok(())
    }
}

fn expand_inner(expr: &Expr, assoc: usize) -> Result<Vec<Query>, ExpandError> {
    match expr {
        Expr::Block(b, tag) => Ok(vec![vec![MemOp {
            block: *b,
            tag: *tag,
        }]]),
        Expr::Expand => Ok(vec![(0..assoc as u32)
            .map(|i| MemOp::access(BlockId(i)))
            .collect()]),
        Expr::Wildcard => Ok((0..assoc as u32)
            .map(|i| vec![MemOp::access(BlockId(i))])
            .collect()),
        Expr::Concat(parts) => {
            let mut result: Vec<Query> = vec![Vec::new()];
            for part in parts {
                let expanded = expand_inner(part, assoc)?;
                let mut next = Vec::with_capacity(result.len() * expanded.len());
                for prefix in &result {
                    for suffix in &expanded {
                        let mut q = prefix.clone();
                        q.extend_from_slice(suffix);
                        next.push(q);
                    }
                }
                guard(next.len())?;
                result = next;
            }
            Ok(result)
        }
        Expr::Set(alternatives) => {
            let mut result = Vec::new();
            for alt in alternatives {
                result.extend(expand_inner(alt, assoc)?);
            }
            guard(result.len())?;
            Ok(result)
        }
        Expr::Extension(base, ext) => {
            let bases = expand_inner(base, assoc)?;
            let exts = expand_inner(ext, assoc)?;
            // Collect the distinct blocks occurring anywhere in the extension
            // expansion, in order of first occurrence (Appendix A: s1[s2]
            // extends each query of s1 with each element of s2).
            let mut blocks: Vec<MemOp> = Vec::new();
            for q in &exts {
                for op in q {
                    if !blocks.iter().any(|b| b.block == op.block) {
                        blocks.push(*op);
                    }
                }
            }
            let mut result = Vec::with_capacity(bases.len() * blocks.len());
            for base_query in &bases {
                for op in &blocks {
                    let mut q = base_query.clone();
                    q.push(*op);
                    result.push(q);
                }
            }
            guard(result.len())?;
            Ok(result)
        }
        Expr::Power(base, k) => {
            let bases = expand_inner(base, assoc)?;
            let mut result: Vec<Query> = vec![Vec::new()];
            for _ in 0..*k {
                let mut next = Vec::with_capacity(result.len() * bases.len());
                for prefix in &result {
                    for rep in &bases {
                        let mut q = prefix.clone();
                        q.extend_from_slice(rep);
                        next.push(q);
                    }
                }
                guard(next.len())?;
                result = next;
            }
            Ok(result)
        }
        Expr::Tagged(inner, tag) => {
            let queries = expand_inner(inner, assoc)?;
            queries
                .into_iter()
                .map(|q| {
                    q.into_iter()
                        .map(|op| {
                            if op.tag.is_some() {
                                Err(ExpandError::DoubleTag {
                                    block: block_name(op.block),
                                })
                            } else {
                                Ok(MemOp {
                                    block: op.block,
                                    tag: Some(*tag),
                                })
                            }
                        })
                        .collect::<Result<Query, _>>()
                })
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::render_query;

    fn rendered(input: &str, assoc: usize) -> Vec<String> {
        expand_query(input, assoc)
            .unwrap()
            .iter()
            .map(render_query)
            .collect()
    }

    #[test]
    fn at_macro_expands_to_associativity_blocks() {
        assert_eq!(rendered("@", 8), vec!["A B C D E F G H"]);
        assert_eq!(rendered("@", 2), vec!["A B"]);
    }

    #[test]
    fn wildcard_expands_to_one_query_per_block() {
        assert_eq!(rendered("_", 4), vec!["A", "B", "C", "D"]);
    }

    #[test]
    fn concatenation_is_a_cross_product() {
        // (A B C D) ∘ (E F) from §4.1.
        assert_eq!(rendered("(A B C D) (E F)", 8), vec!["A B C D E F"]);
        // Cross product when both sides are sets.
        assert_eq!(
            rendered("{A, B} {C, D}", 8),
            vec!["A C", "A D", "B C", "B D"]
        );
    }

    #[test]
    fn extension_macro_matches_the_paper_example() {
        // (A B C D)[E F] = {A B C D E, A B C D F}.
        assert_eq!(
            rendered("(A B C D)[E F]", 8),
            vec!["A B C D E", "A B C D F"]
        );
    }

    #[test]
    fn power_repeats_queries() {
        // (A B C)^3 from §4.1.
        assert_eq!(rendered("(A B C)3", 8), vec!["A B C A B C A B C"]);
    }

    #[test]
    fn tag_distribution_applies_to_every_block() {
        assert_eq!(rendered("(A B)?", 8), vec!["A? B?"]);
        assert_eq!(rendered("(A B)!", 8), vec!["A! B!"]);
    }

    #[test]
    fn example_4_1_full_expansion() {
        // '@ X _?' at associativity 4.
        assert_eq!(
            rendered("@ X _?", 4),
            vec![
                "A B C D X A?",
                "A B C D X B?",
                "A B C D X C?",
                "A B C D X D?"
            ]
        );
    }

    #[test]
    fn thrashing_query_from_appendix_b() {
        // '@ M a M?'-style queries: the paper uses `@ M A M?` shapes to test
        // thrash behaviour; check a related form expands as expected.
        assert_eq!(rendered("@ M A M?", 4), vec!["A B C D M A M?"]);
    }

    #[test]
    fn double_tagging_is_rejected() {
        assert!(matches!(
            expand_query("(A? B)?", 4),
            Err(ExpandError::DoubleTag { .. })
        ));
    }

    #[test]
    fn expansion_size_is_bounded() {
        // 16 alternatives raised to the 8th power would be 4 billion queries.
        assert!(matches!(
            expand_query("(_)8", 16),
            Err(ExpandError::TooManyQueries { .. })
        ));
    }

    #[test]
    fn parse_errors_are_propagated() {
        assert!(matches!(expand_query("(", 4), Err(ExpandError::Parse(_))));
    }

    #[test]
    fn power_of_a_set_enumerates_combinations() {
        // ({A, B})2 = {AA, AB, BA, BB}.
        assert_eq!(rendered("({A, B})2", 4), vec!["A A", "A B", "B A", "B B"]);
    }
}
