//! Abstract syntax of MemBlockLang.

use std::fmt;

/// An abstract memory block, identified by its position in the ordered block
/// alphabet (`A` = 0, `B` = 1, …, `Z` = 25, `AA` = 26, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

/// Tag attached to a memory operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tag {
    /// `?`: profile the access and report whether it hit or missed.
    Profile,
    /// `!`: invalidate the block (`clflush`) instead of loading it.
    Invalidate,
}

/// One memory operation of a concrete query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemOp {
    /// The block operated on.
    pub block: BlockId,
    /// Optional tag.
    pub tag: Option<Tag>,
}

impl MemOp {
    /// An untagged access to `block`.
    pub fn access(block: BlockId) -> Self {
        MemOp { block, tag: None }
    }

    /// A profiled access to `block`.
    pub fn profiled(block: BlockId) -> Self {
        MemOp {
            block,
            tag: Some(Tag::Profile),
        }
    }

    /// An invalidation of `block`.
    pub fn invalidate(block: BlockId) -> Self {
        MemOp {
            block,
            tag: Some(Tag::Invalidate),
        }
    }
}

/// A concrete query: a sequence of memory operations.
pub type Query = Vec<MemOp>;

/// An MBL expression (Figure 4 of the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// A single block, optionally tagged.
    Block(BlockId, Option<Tag>),
    /// The expansion macro `@`.
    Expand,
    /// The wildcard macro `_`.
    Wildcard,
    /// Concatenation `e1 ∘ e2 ∘ …` (also written by juxtaposition).
    Concat(Vec<Expr>),
    /// Explicit set `{e1, e2, …}`.
    Set(Vec<Expr>),
    /// Extension macro `e1[e2]`.
    Extension(Box<Expr>, Box<Expr>),
    /// Power `(e)k`.
    Power(Box<Expr>, u32),
    /// Tag distribution `(e)?` / `(e)!`.
    Tagged(Box<Expr>, Tag),
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Block(b, tag) => {
                write!(f, "{}", block_name(*b))?;
                match tag {
                    Some(Tag::Profile) => write!(f, "?"),
                    Some(Tag::Invalidate) => write!(f, "!"),
                    None => Ok(()),
                }
            }
            Expr::Expand => write!(f, "@"),
            Expr::Wildcard => write!(f, "_"),
            Expr::Concat(parts) => {
                let rendered: Vec<String> = parts.iter().map(|p| p.to_string()).collect();
                write!(f, "{}", rendered.join(" "))
            }
            Expr::Set(alternatives) => {
                let rendered: Vec<String> = alternatives.iter().map(|p| p.to_string()).collect();
                write!(f, "{{{}}}", rendered.join(", "))
            }
            Expr::Extension(base, ext) => write!(f, "({base})[{ext}]"),
            Expr::Power(base, k) => write!(f, "({base}){k}"),
            Expr::Tagged(inner, Tag::Profile) => write!(f, "({inner})?"),
            Expr::Tagged(inner, Tag::Invalidate) => write!(f, "({inner})!"),
        }
    }
}

/// Renders a block identifier as its alphabetic name (`A`, `B`, …, `Z`, `AA`,
/// `AB`, …).
pub fn block_name(block: BlockId) -> String {
    let mut n = block.0 as i64;
    let mut out = Vec::new();
    loop {
        out.push((b'A' + (n % 26) as u8) as char);
        n = n / 26 - 1;
        if n < 0 {
            break;
        }
    }
    out.iter().rev().collect()
}

/// Parses an alphabetic block name back into its identifier.
///
/// Returns `None` if the string is not a non-empty sequence of ASCII uppercase
/// letters.
pub fn parse_block_name(name: &str) -> Option<BlockId> {
    if name.is_empty() || !name.bytes().all(|b| b.is_ascii_uppercase()) {
        return None;
    }
    let mut value: u64 = 0;
    for b in name.bytes() {
        value = value * 26 + (b - b'A') as u64 + 1;
    }
    Some(BlockId((value - 1) as u32))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_names_follow_spreadsheet_order() {
        assert_eq!(block_name(BlockId(0)), "A");
        assert_eq!(block_name(BlockId(7)), "H");
        assert_eq!(block_name(BlockId(25)), "Z");
        assert_eq!(block_name(BlockId(26)), "AA");
        assert_eq!(block_name(BlockId(27)), "AB");
        assert_eq!(block_name(BlockId(51)), "AZ");
        assert_eq!(block_name(BlockId(52)), "BA");
    }

    #[test]
    fn block_names_round_trip() {
        for id in 0..1000 {
            let name = block_name(BlockId(id));
            assert_eq!(parse_block_name(&name), Some(BlockId(id)), "name {name}");
        }
    }

    #[test]
    fn invalid_names_are_rejected() {
        assert_eq!(parse_block_name(""), None);
        assert_eq!(parse_block_name("a"), None);
        assert_eq!(parse_block_name("A1"), None);
    }

    #[test]
    fn display_of_expressions_is_readable() {
        let e = Expr::Concat(vec![
            Expr::Expand,
            Expr::Block(BlockId(23), None),
            Expr::Tagged(Box::new(Expr::Wildcard), Tag::Profile),
        ]);
        assert_eq!(e.to_string(), "@ X (_)?");
    }
}
