//! Parser for MemBlockLang surface syntax.

use std::fmt;

use crate::ast::{parse_block_name, Expr, Tag};

/// Error raised when an MBL expression cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error in the input.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    Block(String),
    Question,
    Bang,
    At,
    Underscore,
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Comma,
    Number(u32),
    Compose,
}

fn lex(input: &str) -> Result<Vec<(usize, Token)>, ParseError> {
    let mut tokens = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                i += 1;
            }
            '?' => {
                tokens.push((i, Token::Question));
                i += 1;
            }
            '!' => {
                tokens.push((i, Token::Bang));
                i += 1;
            }
            '@' => {
                tokens.push((i, Token::At));
                i += 1;
            }
            '_' => {
                tokens.push((i, Token::Underscore));
                i += 1;
            }
            '(' => {
                tokens.push((i, Token::LParen));
                i += 1;
            }
            ')' => {
                tokens.push((i, Token::RParen));
                i += 1;
            }
            '[' => {
                tokens.push((i, Token::LBracket));
                i += 1;
            }
            ']' => {
                tokens.push((i, Token::RBracket));
                i += 1;
            }
            '{' => {
                tokens.push((i, Token::LBrace));
                i += 1;
            }
            '}' => {
                tokens.push((i, Token::RBrace));
                i += 1;
            }
            ',' => {
                tokens.push((i, Token::Comma));
                i += 1;
            }
            '^' => {
                // `(q)^k` is accepted as an alternative spelling of `(q)k`.
                i += 1;
            }
            'A'..='Z' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_uppercase() {
                    i += 1;
                }
                tokens.push((start, Token::Block(input[start..i].to_string())));
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let value: u32 = input[start..i].parse().map_err(|_| ParseError {
                    position: start,
                    message: "number too large".to_string(),
                })?;
                tokens.push((start, Token::Number(value)));
            }
            _ => {
                // Unicode composition operator `∘` (and the ASCII fallback `.`).
                if input[i..].starts_with('∘') || input[i..].starts_with('◦') {
                    tokens.push((i, Token::Compose));
                    i += input[i..].chars().next().map_or(1, char::len_utf8);
                } else if c == '.' {
                    tokens.push((i, Token::Compose));
                    i += 1;
                } else {
                    return Err(ParseError {
                        position: i,
                        message: format!("unexpected character '{c}'"),
                    });
                }
            }
        }
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<(usize, Token)>,
    cursor: usize,
    input_len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.cursor).map(|(_, t)| t)
    }

    fn position(&self) -> usize {
        self.tokens
            .get(self.cursor)
            .map_or(self.input_len, |(p, _)| *p)
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.cursor).map(|(_, t)| t.clone());
        if t.is_some() {
            self.cursor += 1;
        }
        t
    }

    fn expect(&mut self, token: Token) -> Result<(), ParseError> {
        let position = self.position();
        match self.advance() {
            Some(t) if t == token => Ok(()),
            other => Err(ParseError {
                position,
                message: format!("expected {token:?}, found {other:?}"),
            }),
        }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            position: self.position(),
            message: message.into(),
        }
    }

    /// expr := term (('∘')? term)*
    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        let mut parts = vec![self.parse_term()?];
        loop {
            match self.peek() {
                Some(Token::Compose) => {
                    self.advance();
                    parts.push(self.parse_term()?);
                }
                Some(
                    Token::Block(_) | Token::At | Token::Underscore | Token::LParen | Token::LBrace,
                ) => {
                    parts.push(self.parse_term()?);
                }
                _ => break,
            }
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one element")
        } else {
            Expr::Concat(parts)
        })
    }

    /// term := atom postfix*
    fn parse_term(&mut self) -> Result<Expr, ParseError> {
        let mut expr = self.parse_atom()?;
        loop {
            match self.peek() {
                Some(Token::Question) => {
                    self.advance();
                    expr = match expr {
                        Expr::Block(b, None) => Expr::Block(b, Some(Tag::Profile)),
                        other => Expr::Tagged(Box::new(other), Tag::Profile),
                    };
                }
                Some(Token::Bang) => {
                    self.advance();
                    expr = match expr {
                        Expr::Block(b, None) => Expr::Block(b, Some(Tag::Invalidate)),
                        other => Expr::Tagged(Box::new(other), Tag::Invalidate),
                    };
                }
                Some(Token::Number(_)) => {
                    let Some(Token::Number(k)) = self.advance() else {
                        unreachable!("peeked a number")
                    };
                    expr = Expr::Power(Box::new(expr), k);
                }
                Some(Token::LBracket) => {
                    self.advance();
                    let ext = self.parse_expr()?;
                    self.expect(Token::RBracket)?;
                    expr = Expr::Extension(Box::new(expr), Box::new(ext));
                }
                _ => break,
            }
        }
        Ok(expr)
    }

    fn parse_atom(&mut self) -> Result<Expr, ParseError> {
        let position = self.position();
        match self.advance() {
            Some(Token::Block(name)) => {
                let block = parse_block_name(&name).ok_or(ParseError {
                    position,
                    message: format!("invalid block name '{name}'"),
                })?;
                Ok(Expr::Block(block, None))
            }
            Some(Token::At) => Ok(Expr::Expand),
            Some(Token::Underscore) => Ok(Expr::Wildcard),
            Some(Token::LParen) => {
                let inner = self.parse_expr()?;
                self.expect(Token::RParen)?;
                Ok(inner)
            }
            Some(Token::LBrace) => {
                let mut alternatives = vec![self.parse_expr()?];
                loop {
                    match self.peek() {
                        Some(Token::Comma) => {
                            self.advance();
                            alternatives.push(self.parse_expr()?);
                        }
                        Some(Token::RBrace) => {
                            self.advance();
                            break;
                        }
                        _ => return Err(self.error("expected ',' or '}' in set")),
                    }
                }
                Ok(Expr::Set(alternatives))
            }
            other => Err(ParseError {
                position,
                message: format!("expected a block, macro or group, found {other:?}"),
            }),
        }
    }
}

/// Parses an MBL expression.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first offending token.
///
/// # Example
///
/// ```
/// use mbl::parse;
///
/// let expr = parse("@ X _?").unwrap();
/// assert_eq!(expr.to_string(), "@ X (_)?");
/// assert!(parse("@ )").is_err());
/// ```
pub fn parse(input: &str) -> Result<Expr, ParseError> {
    let tokens = lex(input)?;
    if tokens.is_empty() {
        return Err(ParseError {
            position: 0,
            message: "empty expression".to_string(),
        });
    }
    let mut parser = Parser {
        tokens,
        cursor: 0,
        input_len: input.len(),
    };
    let expr = parser.parse_expr()?;
    if parser.peek().is_some() {
        return Err(parser.error("trailing tokens after expression"));
    }
    Ok(expr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::BlockId;

    #[test]
    fn parses_single_blocks_and_tags() {
        assert_eq!(parse("A").unwrap(), Expr::Block(BlockId(0), None));
        assert_eq!(
            parse("B?").unwrap(),
            Expr::Block(BlockId(1), Some(Tag::Profile))
        );
        assert_eq!(
            parse("C!").unwrap(),
            Expr::Block(BlockId(2), Some(Tag::Invalidate))
        );
    }

    #[test]
    fn juxtaposition_concatenates() {
        let e = parse("A B C").unwrap();
        assert_eq!(
            e,
            Expr::Concat(vec![
                Expr::Block(BlockId(0), None),
                Expr::Block(BlockId(1), None),
                Expr::Block(BlockId(2), None),
            ])
        );
    }

    #[test]
    fn explicit_composition_operator_is_accepted() {
        assert_eq!(parse("A ∘ B").unwrap(), parse("A B").unwrap());
        assert_eq!(
            parse("(A B C D) ∘ (E F)").unwrap(),
            parse("(A B C D) (E F)").unwrap()
        );
    }

    #[test]
    fn power_and_extension_and_sets() {
        let e = parse("(A B C)3").unwrap();
        assert!(matches!(e, Expr::Power(_, 3)));
        let e = parse("(A B C D)[E F]").unwrap();
        assert!(matches!(e, Expr::Extension(_, _)));
        let e = parse("{A, B C}").unwrap();
        assert!(matches!(e, Expr::Set(ref v) if v.len() == 2));
    }

    #[test]
    fn caret_power_is_an_alias() {
        assert_eq!(parse("(A)^3").unwrap(), parse("(A)3").unwrap());
    }

    #[test]
    fn group_tags_distribute() {
        let e = parse("(A B)?").unwrap();
        assert!(matches!(e, Expr::Tagged(_, Tag::Profile)));
    }

    #[test]
    fn example_4_1_query_parses() {
        let e = parse("@ X _?").unwrap();
        match e {
            Expr::Concat(parts) => {
                assert_eq!(parts.len(), 3);
                assert_eq!(parts[0], Expr::Expand);
                assert_eq!(parts[1], Expr::Block(BlockId(23), None));
                assert!(matches!(parts[2], Expr::Tagged(_, Tag::Profile)));
            }
            other => panic!("unexpected shape {other:?}"),
        }
    }

    #[test]
    fn errors_carry_positions() {
        let err = parse("A $").unwrap_err();
        assert_eq!(err.position, 2);
        assert!(parse("").is_err());
        assert!(parse("(A").is_err());
        assert!(parse("A )").is_err());
        assert!(parse("{A").is_err());
    }

    #[test]
    fn multi_letter_blocks_are_supported() {
        assert_eq!(parse("AA").unwrap(), Expr::Block(BlockId(26), None));
    }
}
