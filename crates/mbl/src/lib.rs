//! MemBlockLang (MBL): the query language of CacheQuery.
//!
//! MBL (§4.1 and Appendix A of the paper) describes *sets of queries*, where a
//! query is a sequence of memory operations on abstract blocks.  Blocks come
//! from an ordered alphabet `A, B, C, …`; each operation may carry a tag:
//! `?` asks the backend to profile the access (report hit or miss) and `!`
//! asks it to invalidate the block (`clflush`) instead of loading it.
//!
//! The macros make common patterns short:
//!
//! | syntax | meaning |
//! |--------|---------|
//! | `@` | one query consisting of associativity-many distinct blocks in order |
//! | `_` | associativity-many queries of one (distinct) block each |
//! | `e1 e2` or `e1 ∘ e2` | concatenate every query of `e1` with every query of `e2` |
//! | `e1[e2]` | extend every query of `e1` with each block occurring in `e2` |
//! | `(e)k` | repeat `e` k times |
//! | `(e)?`, `(e)!` | tag every block of `e` |
//! | `{e1, e2, …}` | explicit set of alternatives |
//!
//! # Example
//!
//! ```
//! use mbl::{expand_query, render_query};
//!
//! // Example 4.1 of the paper: for associativity 4, `@ X _?` expands to four
//! // queries "A B C D X A?", …, "A B C D X D?".
//! let queries = expand_query("@ X _?", 4).unwrap();
//! assert_eq!(queries.len(), 4);
//! assert_eq!(render_query(&queries[0]), "A B C D X A?");
//! assert_eq!(render_query(&queries[3]), "A B C D X D?");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod expand;
mod parse;

pub use ast::{block_name, parse_block_name, BlockId, Expr, MemOp, Query, Tag};
pub use expand::{expand, expand_query, ExpandError};
pub use parse::{parse, ParseError};

/// Renders a query back into MBL surface syntax (blocks separated by spaces,
/// tags attached).
pub fn render_query(query: &Query) -> String {
    query
        .iter()
        .map(|op| {
            let mut s = block_name(op.block);
            match op.tag {
                Some(Tag::Profile) => s.push('?'),
                Some(Tag::Invalidate) => s.push('!'),
                None => {}
            }
            s
        })
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_round_trips_through_parse_and_expand() {
        let queries = expand_query("A B? C!", 4).unwrap();
        assert_eq!(queries.len(), 1);
        assert_eq!(render_query(&queries[0]), "A B? C!");
    }
}
