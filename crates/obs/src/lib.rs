//! Workspace-wide observability: metrics, histograms and span tracing.
//!
//! Learning replacement policies is a measurement problem twice over: the
//! paper's §7 evaluation hinges on knowing *where queries go* — how many
//! membership queries each L* phase issues, what the memoizing store
//! absorbs, where wall-clock time is spent — and any performance claim
//! about the query path itself needs latency distributions, not averages.
//! This crate is the one shared answer, kept deliberately `std`-only so
//! every other crate (the learner, the query engine, the daemon, the
//! benchmarks) can depend on it without cycles.
//!
//! Three layers:
//!
//! * **Metrics** ([`Counter`], [`Gauge`], [`Histogram`], [`Registry`]) —
//!   atomic instruments whose hot paths are lock-free; the registry names
//!   them and renders a Prometheus-style text exposition.  Gauges saturate
//!   at zero instead of wrapping, so a decrement on an early-return path is
//!   a bounded accounting error, never a `u64::MAX` lie.
//! * **Tracing** ([`Recorder`], [`Span`], [`EventSink`]) — RAII span guards
//!   emitting one JSONL record per span (`ts_ns`, `span_id`, `parent`,
//!   `name`, `dur_ns`, `fields`) into a pluggable sink: a bounded,
//!   drop-counting [`RingSink`] for in-memory capture or a [`WriterSink`]
//!   for `--trace-log` files.  Instrumented code holds an
//!   `Option<&Recorder>` (or `Option<Arc<Recorder>>`); the disabled path
//!   is a single always-`None` branch.
//! * **Quantiles** — the [`Histogram`] is log-linear (32 sub-buckets per
//!   octave, ≤ 3.2 % relative bucket width), mergeable, and extracts
//!   p50/p90/p99/max without retaining samples — replacing the
//!   sort-the-whole-vector percentile code the benchmarks used to carry.
//!
//! # Example
//!
//! ```
//! use obs::{Recorder, Registry, RingSink};
//! use std::sync::Arc;
//!
//! let registry = Registry::new();
//! let latency = registry.histogram("request_ns");
//! latency.record(1_250);
//! latency.record(980_000);
//! assert_eq!(latency.count(), 2);
//! assert!(registry.render_prometheus().contains("request_ns_count 2"));
//!
//! let sink = Arc::new(RingSink::new(128));
//! let recorder = Recorder::new(sink.clone());
//! {
//!     let mut span = recorder.span("request");
//!     span.set("cmd", "query");
//! } // drop emits one JSONL record
//! assert_eq!(sink.drain().len(), 1);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod metrics;
mod trace;

pub use metrics::{Counter, Gauge, HistSnapshot, Histogram, MetricKind, MetricSnapshot, Registry};
pub use trace::{maybe_span, EventSink, FieldValue, Recorder, RingSink, Span, WriterSink};
