//! Lock-free metric instruments and the named registry over them.
//!
//! Counters, gauges and histograms are plain atomics: recording is a handful
//! of relaxed RMW operations, safe to call from any thread, with no lock on
//! the hot path.  The [`Registry`] maps stable names to instruments behind a
//! read-write lock that is only taken at registration and scrape time —
//! callers cache the returned `Arc` handles and never touch the map again.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Exact buckets for values below this bound (one bucket per value).
const LINEAR_MAX: u64 = 32;

/// Sub-buckets per power-of-two octave above [`LINEAR_MAX`]: 32 sub-buckets
/// give a worst-case relative bucket width of 1/32 ≈ 3.2 %.
const SUB_BITS: u32 = 5;

/// Total bucket count: 32 exact buckets + 59 octaves (exponents 5..=63) of
/// 32 sub-buckets each.
const NUM_BUCKETS: usize = LINEAR_MAX as usize + (64 - SUB_BITS as usize) * (1 << SUB_BITS);

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: goes up and down, **saturating at zero** on the way down.
///
/// Saturation turns an unbalanced decrement (e.g. on an early-return path
/// that never executed the matching increment) into a bounded accounting
/// error instead of a wrap to `u64::MAX` — a live metric that reads
/// 18 quintillion busy workers is strictly worse than one that briefly
/// reads zero.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts one, saturating at zero.
    pub fn dec(&self) {
        self.sub(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`, saturating at zero.
    pub fn sub(&self, n: u64) {
        // CAS loop: a plain `fetch_sub` would wrap past zero.
        let _ = self
            .value
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(n))
            });
    }

    /// Overwrites the value (used for gauges mirrored from another source of
    /// truth at scrape time).
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A mergeable log-linear histogram over `u64` samples (nanoseconds, counts).
///
/// Values below 32 get one exact bucket each; above that, every power-of-two
/// octave is split into 32 sub-buckets, so any bucket's width is at most
/// 1/32 ≈ 3.2 % of its lower bound.  Recording is three relaxed atomic adds
/// plus two atomic min/max — no allocation, no lock, no retained samples —
/// and two histograms merge by adding their bucket arrays, which makes
/// per-thread histograms plus a final merge exact.
///
/// Quantile extraction returns the *upper bound* of the bucket holding the
/// rank-⌈qN⌉ sample, i.e. a value at most 3.2 % above the true quantile (and
/// exact below 32).
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// Bucket index for a sample value.
fn bucket_index(v: u64) -> usize {
    if v < LINEAR_MAX {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros();
    let sub = (v >> (exp - SUB_BITS)) & ((1 << SUB_BITS) - 1);
    LINEAR_MAX as usize + ((exp - SUB_BITS) as usize) * (1 << SUB_BITS) + sub as usize
}

/// Inclusive `(lo, hi)` value range of a bucket.
fn bucket_bounds(index: usize) -> (u64, u64) {
    if index < LINEAR_MAX as usize {
        return (index as u64, index as u64);
    }
    let off = (index - LINEAR_MAX as usize) as u32;
    let exp = off / (1 << SUB_BITS) + SUB_BITS;
    let sub = u64::from(off % (1 << SUB_BITS));
    let lo = (1u64 << exp) + (sub << (exp - SUB_BITS));
    let width = 1u64 << (exp - SUB_BITS);
    (lo, lo + (width - 1))
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        let buckets: Vec<AtomicU64> = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            buckets: buckets.into_boxed_slice(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        let v = self.min.load(Ordering::Relaxed);
        if v == u64::MAX {
            0
        } else {
            v
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) of the recorded samples: the upper
    /// bound of the bucket holding the rank-⌈qN⌉ sample, 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (index, &n) in counts.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_bounds(index).1;
            }
        }
        bucket_bounds(NUM_BUCKETS - 1).1
    }

    /// Inclusive `(lo, hi)` bounds of the bucket a value falls into — the
    /// resolution contract tests and docs rely on.
    pub fn bucket_bounds_of(v: u64) -> (u64, u64) {
        bucket_bounds(bucket_index(v))
    }

    /// Adds every sample of `other` into `self` (exact: bucket arrays,
    /// counts and sums are integers).  Merging is commutative and
    /// associative, so per-thread histograms fold into one in any order.
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// One consistent-enough view of the histogram (individual fields are
    /// read with relaxed loads; concurrent recording may skew them by the
    /// in-flight samples).
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            count: self.count(),
            sum: self.sum(),
            min: self.min(),
            max: self.max(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
        }
    }
}

/// Point-in-time summary of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
}

/// What kind of instrument a registry entry is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic counter.
    Counter,
    /// Up/down gauge.
    Gauge,
    /// Log-linear histogram.
    Histogram,
}

impl MetricKind {
    /// Prometheus type name (histograms are exposed as summaries: quantiles
    /// are pre-extracted server-side instead of shipping 1920 buckets).
    pub fn prometheus_type(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "summary",
        }
    }
}

/// One named metric captured at scrape time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricSnapshot {
    /// Registered name.
    pub name: String,
    /// Instrument kind.
    pub kind: MetricKind,
    /// Current value (counters and gauges; a histogram's sample count).
    pub value: u64,
    /// Distribution summary, for histograms.
    pub histogram: Option<HistSnapshot>,
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> MetricKind {
        match self {
            Metric::Counter(_) => MetricKind::Counter,
            Metric::Gauge(_) => MetricKind::Gauge,
            Metric::Histogram(_) => MetricKind::Histogram,
        }
    }
}

/// A named collection of instruments with a Prometheus-style exposition.
///
/// `counter`/`gauge`/`histogram` get-or-create by name and return shared
/// handles; callers keep the `Arc` and record through it without ever
/// re-entering the registry.  Names are code-controlled identifiers
/// (`[a-z0-9_]`), rendered verbatim.
///
/// Requesting an existing name as a *different* kind panics: that is a
/// programming error (two call sites disagreeing about what a metric is),
/// not a runtime condition to limp through.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: RwLock<BTreeMap<String, Metric>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn get_or_insert(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        if let Some(metric) = self.metrics.read().expect("registry poisoned").get(name) {
            return metric.clone();
        }
        let mut map = self.metrics.write().expect("registry poisoned");
        map.entry(name.to_string()).or_insert_with(make).clone()
    }

    /// The counter named `name`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        match self.get_or_insert(name, || Metric::Counter(Arc::new(Counter::new()))) {
            Metric::Counter(c) => c,
            other => panic!("metric '{name}' is a {:?}, not a counter", other.kind()),
        }
    }

    /// The gauge named `name`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        match self.get_or_insert(name, || Metric::Gauge(Arc::new(Gauge::new()))) {
            Metric::Gauge(g) => g,
            other => panic!("metric '{name}' is a {:?}, not a gauge", other.kind()),
        }
    }

    /// The histogram named `name`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        match self.get_or_insert(name, || Metric::Histogram(Arc::new(Histogram::new()))) {
            Metric::Histogram(h) => h,
            other => panic!("metric '{name}' is a {:?}, not a histogram", other.kind()),
        }
    }

    /// Captures every registered metric, sorted by name.
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        let map = self.metrics.read().expect("registry poisoned");
        map.iter()
            .map(|(name, metric)| match metric {
                Metric::Counter(c) => MetricSnapshot {
                    name: name.clone(),
                    kind: MetricKind::Counter,
                    value: c.get(),
                    histogram: None,
                },
                Metric::Gauge(g) => MetricSnapshot {
                    name: name.clone(),
                    kind: MetricKind::Gauge,
                    value: g.get(),
                    histogram: None,
                },
                Metric::Histogram(h) => {
                    let snap = h.snapshot();
                    MetricSnapshot {
                        name: name.clone(),
                        kind: MetricKind::Histogram,
                        value: snap.count,
                        histogram: Some(snap),
                    }
                }
            })
            .collect()
    }

    /// Renders the Prometheus text exposition format: counters and gauges as
    /// single samples, histograms as summaries (`{quantile="…"}` samples plus
    /// `_sum`/`_count`/`_max`).
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for metric in self.snapshot() {
            let name = &metric.name;
            let _ = writeln!(out, "# TYPE {name} {}", metric.kind.prometheus_type());
            match metric.histogram {
                None => {
                    let _ = writeln!(out, "{name} {}", metric.value);
                }
                Some(h) => {
                    let _ = writeln!(out, "{name}{{quantile=\"0.5\"}} {}", h.p50);
                    let _ = writeln!(out, "{name}{{quantile=\"0.9\"}} {}", h.p90);
                    let _ = writeln!(out, "{name}{{quantile=\"0.99\"}} {}", h.p99);
                    let _ = writeln!(out, "{name}_sum {}", h.sum);
                    let _ = writeln!(out, "{name}_count {}", h.count);
                    let _ = writeln!(out, "# TYPE {name}_max gauge");
                    let _ = writeln!(out, "{name}_max {}", h.max);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn gauges_saturate_instead_of_wrapping() {
        let g = Gauge::new();
        g.inc();
        g.dec();
        g.dec(); // the early-return double-decrement that used to wrap
        assert_eq!(g.get(), 0);
        g.add(3);
        g.sub(10);
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn bucket_layout_is_monotone_and_self_consistent() {
        // Indices are monotone in the value, bounds contain the value, and
        // the relative width never exceeds 1/32.
        let mut values: Vec<u64> = (0..64)
            .flat_map(|shift| {
                [0u64, 1, 3]
                    .into_iter()
                    .map(move |delta| (1u64 << shift).saturating_add(delta))
            })
            .collect();
        values.sort_unstable();
        let mut previous = 0usize;
        for v in values {
            let index = bucket_index(v);
            assert!(index >= previous, "index not monotone at {v}");
            previous = index;
            let (lo, hi) = bucket_bounds(index);
            assert!(lo <= v && v <= hi, "bounds ({lo},{hi}) miss {v}");
            if lo >= LINEAR_MAX {
                assert!(hi - lo <= lo / 32, "bucket too wide at {v}");
            }
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
        assert_eq!(bucket_bounds(NUM_BUCKETS - 1).1, u64::MAX);
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in [0u64, 1, 5, 31] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(0.5), 1);
        assert_eq!(h.quantile(1.0), 31);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 31);
        assert_eq!(h.sum(), 37);
    }

    #[test]
    fn quantiles_stay_within_bucket_resolution() {
        let h = Histogram::new();
        let mut samples: Vec<u64> = (0..1000).map(|i| i * i * 37 + 11).collect();
        for &s in &samples {
            h.record(s);
        }
        samples.sort_unstable();
        for (q, rank) in [(0.5, 499usize), (0.9, 899), (0.99, 989)] {
            let exact = samples[rank];
            let approx = h.quantile(q);
            let (lo, hi) = Histogram::bucket_bounds_of(approx);
            assert!(
                lo <= exact && exact <= hi,
                "q={q}: {approx} vs exact {exact}"
            );
        }
    }

    #[test]
    fn merge_adds_exactly() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in [1u64, 100, 10_000] {
            a.record(v);
        }
        for v in [2u64, 100, 1 << 40] {
            b.record(v);
        }
        a.merge_from(&b);
        assert_eq!(a.count(), 6);
        assert_eq!(a.sum(), 1 + 100 + 10_000 + 2 + 100 + (1 << 40));
        assert_eq!(a.min(), 1);
        assert_eq!(a.max(), 1 << 40);
    }

    #[test]
    fn registry_returns_shared_handles() {
        let r = Registry::new();
        r.counter("queries").add(2);
        r.counter("queries").add(3);
        assert_eq!(r.counter("queries").get(), 5);
        let snap = r.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].value, 5);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("queries");
        r.gauge("queries");
    }

    #[test]
    fn prometheus_rendering_covers_every_kind() {
        let r = Registry::new();
        r.counter("queries").add(7);
        r.gauge("busy").set(2);
        r.histogram("request_ns").record(1000);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE queries counter"));
        assert!(text.contains("queries 7"));
        assert!(text.contains("# TYPE busy gauge"));
        assert!(text.contains("busy 2"));
        assert!(text.contains("# TYPE request_ns summary"));
        assert!(text.contains("request_ns{quantile=\"0.5\"}"));
        assert!(text.contains("request_ns_count 1"));
    }

    #[test]
    fn concurrent_increments_are_exact() {
        // The satellite smoke: 8 threads x 10k increments each, exact totals
        // on a counter, a gauge and a histogram.
        let r = Arc::new(Registry::new());
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let r = Arc::clone(&r);
            handles.push(thread::spawn(move || {
                let c = r.counter("hits");
                let g = r.gauge("active");
                let h = r.histogram("lat");
                for i in 0..10_000u64 {
                    c.inc();
                    g.inc();
                    h.record(t * 10_000 + i);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.counter("hits").get(), 80_000);
        assert_eq!(r.gauge("active").get(), 80_000);
        let h = r.histogram("lat");
        assert_eq!(h.count(), 80_000);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 79_999);
        // Quantile walks see exactly the recorded mass.
        assert!(h.quantile(1.0) >= 79_999);
    }
}
