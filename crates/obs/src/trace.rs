//! Structured span tracing: RAII guards, JSONL records, pluggable sinks.
//!
//! A [`Recorder`] hands out [`Span`] guards; dropping a span emits exactly
//! one JSON line with a fixed schema —
//!
//! ```json
//! {"ts_ns":123,"span_id":2,"parent":1,"name":"lstar.fill","dur_ns":456,"fields":{"queries":32}}
//! ```
//!
//! — into an [`EventSink`].  `ts_ns` is monotonic time since the recorder
//! was created (no wall clock: the records are for *relating* work, not for
//! dating it), `parent` is `null` for root spans, and `fields` carries
//! whatever the instrumented site attached.  Instrumented code holds an
//! `Option<&Recorder>`; when it is `None` nothing allocates and nothing is
//! rendered — the disabled path is one predictable branch.

use std::fmt;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A value attached to a span or event field.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// Escapes a string into a JSON string literal (appended to `out`).
fn escape_json(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn render_value(out: &mut String, value: &FieldValue) {
    match value {
        FieldValue::U64(v) => out.push_str(&v.to_string()),
        FieldValue::I64(v) => out.push_str(&v.to_string()),
        FieldValue::F64(v) => {
            if v.is_finite() {
                out.push_str(&v.to_string());
            } else {
                out.push_str("null");
            }
        }
        FieldValue::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
        FieldValue::Str(v) => escape_json(out, v),
    }
}

/// Where rendered JSONL records go.  Implementations must be cheap and
/// non-blocking-ish: they are called from hot paths while a span drops.
pub trait EventSink: Send + Sync {
    /// Consumes one rendered JSON line (no trailing newline).
    fn emit(&self, line: &str);

    /// Flushes any buffering (called on orderly shutdown; default no-op).
    fn flush(&self) {}
}

/// A bounded in-memory sink: keeps the most recent `capacity` records and
/// counts what it had to drop.  This is the always-safe default — a trace
/// can never eat the heap, and the drop counter says when it clipped.
#[derive(Debug)]
pub struct RingSink {
    capacity: usize,
    buf: Mutex<std::collections::VecDeque<String>>,
    dropped: AtomicU64,
}

impl RingSink {
    /// Creates a ring holding at most `capacity` records (min 1).
    pub fn new(capacity: usize) -> Self {
        RingSink {
            capacity: capacity.max(1),
            buf: Mutex::new(std::collections::VecDeque::new()),
            dropped: AtomicU64::new(0),
        }
    }

    /// Takes every buffered record, oldest first.
    pub fn drain(&self) -> Vec<String> {
        self.buf.lock().expect("ring poisoned").drain(..).collect()
    }

    /// Records evicted to make room so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

impl EventSink for RingSink {
    fn emit(&self, line: &str) {
        let mut buf = self.buf.lock().expect("ring poisoned");
        if buf.len() == self.capacity {
            buf.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        buf.push_back(line.to_string());
    }
}

/// A sink writing each record as one line to an [`io::Write`](std::io::Write)
/// (a `--trace-log` file, a pipe).  Write errors are counted, not raised —
/// tracing must never take the traced system down.
pub struct WriterSink {
    writer: Mutex<Box<dyn Write + Send>>,
    errors: AtomicU64,
}

impl WriterSink {
    /// Wraps a writer.  Hand in a `BufWriter` for files; [`EventSink::flush`]
    /// is forwarded.
    pub fn new(writer: Box<dyn Write + Send>) -> Self {
        WriterSink {
            writer: Mutex::new(writer),
            errors: AtomicU64::new(0),
        }
    }

    /// Number of failed writes so far.
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }
}

impl fmt::Debug for WriterSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WriterSink")
            .field("errors", &self.errors())
            .finish_non_exhaustive()
    }
}

impl EventSink for WriterSink {
    fn emit(&self, line: &str) {
        let mut w = self.writer.lock().expect("writer poisoned");
        if writeln!(w, "{line}").is_err() {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn flush(&self) {
        let _ = self.writer.lock().expect("writer poisoned").flush();
    }
}

/// Issues span ids and timestamps and renders records into one sink.
///
/// Cheap to share (`Arc<Recorder>`); all state is atomic.  Instrumented code
/// that may run without tracing takes `Option<&Recorder>` and uses
/// [`maybe_span`].
pub struct Recorder {
    sink: Arc<dyn EventSink>,
    next_id: AtomicU64,
    epoch: Instant,
}

impl fmt::Debug for Recorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Recorder")
            .field("next_id", &self.next_id.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Recorder {
    /// Creates a recorder emitting into `sink`.
    pub fn new(sink: Arc<dyn EventSink>) -> Self {
        Recorder {
            sink,
            next_id: AtomicU64::new(1),
            epoch: Instant::now(),
        }
    }

    /// Monotonic nanoseconds since the recorder was created.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn fresh_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Opens a root span.  The span emits its record when dropped.
    pub fn span(&self, name: &str) -> Span<'_> {
        self.span_with_parent(name, None)
    }

    /// Opens a span under an explicit parent id (use [`Span::child`] when
    /// the parent guard is in scope; this is for crossing thread or struct
    /// boundaries where only the id travels).
    pub fn span_with_parent(&self, name: &str, parent: Option<u64>) -> Span<'_> {
        Span {
            recorder: self,
            id: self.fresh_id(),
            parent,
            name: name.to_string(),
            start_ns: self.now_ns(),
            fields: Vec::new(),
        }
    }

    /// Emits a zero-duration record (an instantaneous event).
    pub fn event(&self, name: &str, parent: Option<u64>, fields: &[(&str, FieldValue)]) {
        let ts = self.now_ns();
        self.emit_record(ts, self.fresh_id(), parent, name, 0, fields);
    }

    /// Forwards a flush to the sink (call on orderly shutdown so buffered
    /// `--trace-log` lines reach the file).
    pub fn flush(&self) {
        self.sink.flush();
    }

    fn emit_record(
        &self,
        ts_ns: u64,
        span_id: u64,
        parent: Option<u64>,
        name: &str,
        dur_ns: u64,
        fields: &[(&str, FieldValue)],
    ) {
        let mut line = String::with_capacity(96);
        line.push_str("{\"ts_ns\":");
        line.push_str(&ts_ns.to_string());
        line.push_str(",\"span_id\":");
        line.push_str(&span_id.to_string());
        line.push_str(",\"parent\":");
        match parent {
            Some(p) => line.push_str(&p.to_string()),
            None => line.push_str("null"),
        }
        line.push_str(",\"name\":");
        escape_json(&mut line, name);
        line.push_str(",\"dur_ns\":");
        line.push_str(&dur_ns.to_string());
        line.push_str(",\"fields\":{");
        for (i, (key, value)) in fields.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            escape_json(&mut line, key);
            line.push(':');
            render_value(&mut line, value);
        }
        line.push_str("}}");
        self.sink.emit(&line);
    }
}

/// An open span: emits its JSONL record when dropped (RAII), so early
/// returns and `?` propagation are recorded like straight-line exits.
#[derive(Debug)]
pub struct Span<'r> {
    recorder: &'r Recorder,
    id: u64,
    parent: Option<u64>,
    name: String,
    start_ns: u64,
    fields: Vec<(&'static str, FieldValue)>,
}

impl Span<'_> {
    /// This span's id, for parenting across boundaries the guard cannot
    /// cross.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Opens a child span.
    pub fn child(&self, name: &str) -> Span<'_> {
        self.recorder.span_with_parent(name, Some(self.id))
    }

    /// Attaches (or appends) a field recorded with the span.
    pub fn set(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        self.fields.push((key, value.into()));
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let end = self.recorder.now_ns();
        self.recorder.emit_record(
            self.start_ns,
            self.id,
            self.parent,
            &self.name,
            end.saturating_sub(self.start_ns),
            &self.fields,
        );
    }
}

/// Opens a span iff a recorder is present: the single-branch disabled path
/// every instrumented call site goes through.
pub fn maybe_span<'r>(recorder: Option<&'r Recorder>, name: &str) -> Option<Span<'r>> {
    recorder.map(|r| r.span(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_emit_the_pinned_schema() {
        let sink = Arc::new(RingSink::new(16));
        let recorder = Recorder::new(sink.clone());
        {
            let mut root = recorder.span("request");
            root.set("cmd", "query");
            root.set("n", 3u64);
            let _child = root.child("execute");
        }
        let lines = sink.drain();
        assert_eq!(lines.len(), 2, "child then root");
        // The child drops first; the root mentions its fields.
        assert!(lines[0].contains("\"name\":\"execute\""));
        assert!(lines[0].contains("\"parent\":1"));
        assert!(lines[1].contains("\"name\":\"request\""));
        assert!(lines[1].contains("\"parent\":null"));
        assert!(lines[1].contains("\"fields\":{\"cmd\":\"query\",\"n\":3}"));
        for line in &lines {
            for key in ["ts_ns", "span_id", "parent", "name", "dur_ns", "fields"] {
                assert!(line.contains(&format!("\"{key}\":")), "{line} lacks {key}");
            }
        }
    }

    #[test]
    fn ring_sink_bounds_and_counts_drops() {
        let sink = RingSink::new(2);
        sink.emit("a");
        sink.emit("b");
        sink.emit("c");
        assert_eq!(sink.dropped(), 1);
        assert_eq!(sink.drain(), vec!["b".to_string(), "c".to_string()]);
    }

    #[test]
    fn writer_sink_writes_lines() {
        let buf: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let sink = Arc::new(WriterSink::new(Box::new(Shared(buf.clone()))));
        let recorder = Recorder::new(sink.clone());
        recorder.event("tick", None, &[("ok", FieldValue::Bool(true))]);
        recorder.flush();
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert_eq!(text.lines().count(), 1);
        assert!(text.contains("\"name\":\"tick\""));
        assert!(text.contains("\"fields\":{\"ok\":true}"));
        assert_eq!(sink.errors(), 0);
    }

    #[test]
    fn strings_are_escaped() {
        let sink = Arc::new(RingSink::new(4));
        let recorder = Recorder::new(sink.clone());
        recorder.event(
            "weird\"name\n",
            None,
            &[("s", FieldValue::Str("a\\b\t\u{1}".to_string()))],
        );
        let line = sink.drain().remove(0);
        assert!(line.contains("\"weird\\\"name\\n\""));
        assert!(line.contains("\"a\\\\b\\t\\u0001\""));
    }

    #[test]
    fn maybe_span_is_none_without_a_recorder() {
        assert!(maybe_span(None, "anything").is_none());
    }
}
