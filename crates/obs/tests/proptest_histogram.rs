//! Property-based tests for the log-linear histogram: merge associativity,
//! bucket monotonicity, and quantile bounds against an exact sorted
//! reference on up to 4096 samples.

use proptest::prelude::*;

use obs::Histogram;

/// Samples spanning the whole u64 range, biased toward latency-shaped
/// values (small counts, microsecond..second nanosecond magnitudes).
fn sample() -> impl Strategy<Value = u64> {
    prop_oneof![
        0u64..64,
        1_000u64..1_000_000,
        1_000_000u64..10_000_000_000,
        (0u32..64).prop_map(|shift| 1u64 << shift),
        0u64..=u64::MAX,
    ]
}

fn hist_of(samples: &[u64]) -> Histogram {
    let h = Histogram::new();
    for &s in samples {
        h.record(s);
    }
    h
}

proptest! {
    /// Merging is associative (and bucket-exact): (a ⊕ b) ⊕ c and
    /// a ⊕ (b ⊕ c) agree on every observable.
    #[test]
    fn merge_is_associative(
        a in proptest::collection::vec(sample(), 0..64),
        b in proptest::collection::vec(sample(), 0..64),
        c in proptest::collection::vec(sample(), 0..64),
    ) {
        let left = hist_of(&a);
        let bc = hist_of(&b);
        left.merge_from(&bc);
        left.merge_from(&hist_of(&c));

        let right = hist_of(&a);
        let inner = hist_of(&b);
        inner.merge_from(&hist_of(&c));
        right.merge_from(&inner);

        prop_assert_eq!(left.count(), right.count());
        prop_assert_eq!(left.sum(), right.sum());
        prop_assert_eq!(left.min(), right.min());
        prop_assert_eq!(left.max(), right.max());
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(left.quantile(q), right.quantile(q));
        }
    }

    /// Bucket bounds are monotone and tight: larger values never land in
    /// earlier buckets, every value is inside its bucket, and the bucket is
    /// never wider than 1/32 of its lower bound.
    #[test]
    fn buckets_are_monotone_and_contain_their_values(
        values in proptest::collection::vec(sample(), 1..128),
    ) {
        let mut values = values;
        values.sort_unstable();
        let mut previous_hi = 0u64;
        for (i, &v) in values.iter().enumerate() {
            let (lo, hi) = Histogram::bucket_bounds_of(v);
            prop_assert!(lo <= v && v <= hi, "({lo},{hi}) misses {v}");
            if i > 0 {
                // Monotone: this bucket ends at or after the previous one.
                prop_assert!(hi >= previous_hi, "bucket order broken at {v}");
            }
            previous_hi = hi;
            if lo >= 32 {
                prop_assert!(hi - lo < lo / 32 + 1, "bucket too wide at {v}");
            } else {
                prop_assert_eq!(lo, hi, "small values must be exact");
            }
        }
    }

    /// Every quantile answer shares a bucket with the exact answer computed
    /// from the fully sorted sample vector (the code path the histogram
    /// replaced), for up to 4096 samples.
    #[test]
    fn quantiles_bound_the_exact_reference(
        samples in proptest::collection::vec(sample(), 1..4096),
    ) {
        let mut samples = samples;
        let h = hist_of(&samples);
        samples.sort_unstable();
        let n = samples.len();
        for q in [0.0f64, 0.1, 0.5, 0.9, 0.99, 1.0] {
            let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
            let exact = samples[rank - 1];
            let approx = h.quantile(q);
            let (lo, hi) = Histogram::bucket_bounds_of(approx);
            prop_assert!(
                lo <= exact && exact <= hi,
                "q={}: approx {} [{}..{}] vs exact {}", q, approx, lo, hi, exact
            );
            // The reported value is the bucket's upper bound: never below
            // the true quantile, and at most one bucket width above it.
            prop_assert!(approx >= exact);
        }
        prop_assert_eq!(h.count() as usize, n);
        prop_assert_eq!(h.max(), *samples.last().unwrap());
        prop_assert_eq!(h.min(), samples[0]);
    }
}
