//! Active learning of Mealy machines: the LearnLib replacement.
//!
//! The paper (§3) plugs its Polca membership oracle into LearnLib's
//! implementation of Angluin-style active learning for Mealy machines and
//! uses the Wp-method for conformance-testing-based equivalence queries.
//! This crate provides the same ingredients, plus the query-efficiency
//! subsystem that makes large policies tractable:
//!
//! * [`MembershipOracle`] / [`EquivalenceOracle`] — the teacher interface of
//!   the student–teacher paradigm (§3.1);
//! * [`OracleFactory`] / [`QueryPool`] — the factory abstraction minting
//!   independent per-worker oracles, and the shared query engine that
//!   memoizes every membership query in a prefix trie and shards conformance
//!   suites across a `std::thread` worker pool;
//! * [`QueryCache`] — the thread-safe prefix-trie memoization layer itself
//!   (exploiting the prefix-closedness of deterministic output words);
//! * [`learn_mealy`] — L* for Mealy machines with an observation table,
//!   batched row filling, and Rivest–Schapire counterexample processing;
//! * [`WpMethodOracle`] / [`WMethodOracle`] — `(|H| + k)`-complete conformance
//!   test suites (§3.3, Theorem 3.3) used as the equivalence oracle;
//! * [`RandomWalkOracle`] — the cheaper randomized alternative mentioned in
//!   §6 as a possible optimization;
//! * [`CachedOracle`] — a single-oracle adapter over the query cache,
//!   mirroring LearnLib's query cache;
//! * [`MealyOracle`] — a simulated teacher backed by a known machine, used in
//!   tests and for the ablation benchmarks.
//!
//! # Example: learning a toy machine
//!
//! ```
//! use automata::MealyBuilder;
//! use learning::{learn_mealy, LearnOptions, MealyOracle, WpMethodOracle};
//!
//! // Build the 2-way LRU policy machine of Example 2.2 and learn it back.
//! let mut b = MealyBuilder::new(vec!["Ln(0)", "Ln(1)", "Evct"]);
//! let cs0 = b.add_state();
//! let cs1 = b.add_state();
//! b.add_transition(cs0, "Ln(0)", cs1, "⊥");
//! b.add_transition(cs0, "Ln(1)", cs0, "⊥");
//! b.add_transition(cs0, "Evct", cs1, "0");
//! b.add_transition(cs1, "Ln(0)", cs1, "⊥");
//! b.add_transition(cs1, "Ln(1)", cs0, "⊥");
//! b.add_transition(cs1, "Evct", cs0, "1");
//! let target = b.build(cs0).unwrap();
//!
//! // Any closure producing independent teachers is an `OracleFactory`.
//! let teacher = target.clone();
//! let factory = move || MealyOracle::new(teacher.clone());
//! let mut equivalence = WpMethodOracle::new(1);
//! let (learned, stats) = learn_mealy(
//!     target.inputs().to_vec(),
//!     &factory,
//!     &mut equivalence,
//!     LearnOptions::default(),
//! )
//! .unwrap();
//! assert_eq!(learned.num_states(), 2);
//! assert!(automata::equivalent(&learned, &target));
//! assert!(stats.membership_queries > 0);
//! assert_eq!(
//!     stats.membership_queries,
//!     stats.cache_hits + stats.cache_misses,
//! );
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod cache;
mod equivalence;
mod lstar;
mod oracle;
mod pool;
mod table;
mod wmethod;

pub use cache::{CacheVerdict, QueryCache};
pub use equivalence::{RandomWalkOracle, WMethodOracle, WpMethodOracle};
pub use lstar::{
    learn_mealy, LearnError, LearnOptions, LearnPhase, LearnPhases, LearnProgress, LearnStats,
    PhaseStats,
};
pub use oracle::{
    CachedOracle, EquivalenceOracle, MealyOracle, MembershipOracle, NonDeterminism, OracleError,
};
pub use pool::{OracleFactory, QueryPool, SuiteOutcome, WORKERS_ENV};
pub use wmethod::{
    characterization_set, state_cover, transition_cover, w_method_suite, w_method_suite_iter,
    wp_method_suite, wp_method_suite_iter, WMethodSuite, WpMethodSuite,
};
