//! Test-suite generation for conformance testing: state cover,
//! characterization sets, and the W- and Wp-methods.
//!
//! The equivalence queries of the learning loop are approximated by
//! conformance testing (§3.3): an `(|H| + k)`-complete test suite guarantees
//! that if the system under learning agrees with the hypothesis on every test
//! word, then either the two machines are equivalent or the system has more
//! than `|H| + k` states (Theorem 3.3).
//!
//! Suites are *lazy*: [`w_method_suite_iter`] and [`wp_method_suite_iter`]
//! yield test words on demand, so an equivalence query that fails on an early
//! test never materializes the (exponentially large) tail of the suite.  The
//! eager [`w_method_suite`] / [`wp_method_suite`] functions collect the same
//! words for callers that want the whole suite.

use std::fmt;
use std::hash::{Hash, Hasher};

use automata::fxhash::{FxHashMap, FxHashSet, FxHasher};
use automata::{Mealy, StateId};

/// Breadth-first state cover: for every state, a shortest input word reaching
/// it from the initial state.  The cover is returned indexed by state.
pub fn state_cover<I, O>(machine: &Mealy<I, O>) -> Vec<Vec<I>>
where
    I: Clone + Eq + Hash + fmt::Debug,
    O: Clone + Eq + fmt::Debug,
{
    let mut cover: Vec<Option<Vec<I>>> = vec![None; machine.num_states()];
    let mut queue = std::collections::VecDeque::new();
    cover[machine.initial().index()] = Some(Vec::new());
    queue.push_back(machine.initial());
    while let Some(state) = queue.pop_front() {
        let prefix = cover[state.index()]
            .clone()
            .expect("visited states have a prefix");
        for (ii, input) in machine.inputs().iter().enumerate() {
            let (next, _) = machine.step_by_index(state, ii);
            if cover[next.index()].is_none() {
                let mut word = prefix.clone();
                word.push(input.clone());
                cover[next.index()] = Some(word);
                queue.push_back(next);
            }
        }
    }
    cover
        .into_iter()
        .map(|c| c.expect("every state of a learned hypothesis is reachable"))
        .collect()
}

/// Transition cover: the state cover plus every state-cover word extended by
/// every input symbol.
pub fn transition_cover<I, O>(machine: &Mealy<I, O>) -> Vec<Vec<I>>
where
    I: Clone + Eq + Hash + fmt::Debug,
    O: Clone + Eq + fmt::Debug,
{
    let cover = state_cover(machine);
    let mut result = cover.clone();
    for word in &cover {
        for input in machine.inputs() {
            let mut extended = word.clone();
            extended.push(input.clone());
            result.push(extended);
        }
    }
    result
}

/// A characterization set `W`: a set of input words such that any two distinct
/// states of `machine` produce different output words on at least one element
/// of `W`.
///
/// Also returns, for every state, the indices into `W` that suffice to
/// distinguish that state from every other state (the per-state
/// identification sets `Wi` used by the Wp-method).
// Index loops over symmetric state pairs (writing both [a][b] and [b][a])
// read better than the iterator forms clippy suggests.
#[allow(clippy::needless_range_loop)]
pub fn characterization_set<I, O>(machine: &Mealy<I, O>) -> (Vec<Vec<I>>, Vec<Vec<usize>>)
where
    I: Clone + Eq + Hash + fmt::Debug,
    O: Clone + Eq + Hash + fmt::Debug,
{
    let n = machine.num_states();
    let mut w: Vec<Vec<I>> = Vec::new();

    // Partition refinement, remembering a distinguishing word for every pair
    // of states that ends up separated.
    // distinguishing[a][b] = index into `w` of a word separating a and b.
    let mut distinguishing: Vec<Vec<Option<usize>>> = vec![vec![None; n]; n];

    // Initial partition by the output row (single-symbol words).
    for (ii, input) in machine.inputs().iter().enumerate() {
        let mut word_index: Option<usize> = None;
        for a in 0..n {
            for b in (a + 1)..n {
                if distinguishing[a][b].is_some() {
                    continue;
                }
                let oa = machine.step_by_index(StateId::new(a), ii).1;
                let ob = machine.step_by_index(StateId::new(b), ii).1;
                if oa != ob {
                    let wi = *word_index.get_or_insert_with(|| {
                        w.push(vec![input.clone()]);
                        w.len() - 1
                    });
                    distinguishing[a][b] = Some(wi);
                    distinguishing[b][a] = Some(wi);
                }
            }
        }
    }

    // Iteratively: if two states are undistinguished but some input leads them
    // to distinguished successors, prepend that input to the successors'
    // distinguishing word.
    loop {
        let mut progress = false;
        for a in 0..n {
            for b in (a + 1)..n {
                if distinguishing[a][b].is_some() {
                    continue;
                }
                'inputs: for (ii, input) in machine.inputs().iter().enumerate() {
                    let (na, _) = machine.step_by_index(StateId::new(a), ii);
                    let (nb, _) = machine.step_by_index(StateId::new(b), ii);
                    if na == nb {
                        continue;
                    }
                    if let Some(wi) = distinguishing[na.index()][nb.index()] {
                        let mut word = vec![input.clone()];
                        word.extend(w[wi].iter().cloned());
                        w.push(word);
                        let new_index = w.len() - 1;
                        distinguishing[a][b] = Some(new_index);
                        distinguishing[b][a] = Some(new_index);
                        progress = true;
                        break 'inputs;
                    }
                }
            }
        }
        if !progress {
            break;
        }
    }

    // Deduplicate words while remapping indices.
    let mut dedup: FxHashMap<Vec<I>, usize> = FxHashMap::default();
    let mut compact: Vec<Vec<I>> = Vec::new();
    let mut remap = vec![0usize; w.len()];
    for (i, word) in w.iter().enumerate() {
        let idx = *dedup.entry(word.clone()).or_insert_with(|| {
            compact.push(word.clone());
            compact.len() - 1
        });
        remap[i] = idx;
    }

    let mut identification: Vec<Vec<usize>> = vec![Vec::new(); n];
    for a in 0..n {
        for b in 0..n {
            if a == b {
                continue;
            }
            if let Some(wi) = distinguishing[a][b] {
                let idx = remap[wi];
                if !identification[a].contains(&idx) {
                    identification[a].push(idx);
                }
            }
        }
        identification[a].sort_unstable();
    }

    if compact.is_empty() {
        // A one-state machine (or one whose states are indistinguishable —
        // impossible for minimal hypotheses): use a single arbitrary word so
        // that the test suite still exercises outputs.
        if let Some(first) = machine.inputs().first() {
            compact.push(vec![first.clone()]);
        }
        for ident in &mut identification {
            ident.push(0);
        }
    }

    (compact, identification)
}

/// All input words of length at most `k` (including the empty word), in
/// length-lexicographic order.
fn words_up_to<I: Clone>(inputs: &[I], k: usize) -> Vec<Vec<I>> {
    let mut result = vec![Vec::new()];
    let mut frontier = vec![Vec::new()];
    for _ in 0..k {
        let mut next = Vec::new();
        for word in &frontier {
            for input in inputs {
                let mut extended: Vec<I> = word.clone();
                extended.push(input.clone());
                next.push(extended);
            }
        }
        result.extend(next.iter().cloned());
        frontier = next;
    }
    result
}

/// Deduplication set for suite words, tuned for the iterators' access
/// pattern: millions of candidate words, most of them new, each built from a
/// shared `prefix · middle` base plus a short suffix.
///
/// Words live back to back in one element arena and the open-addressing
/// table stores `(hash, offset, length)` triples, so a candidate costs one
/// hash and one probe, and a *duplicate* candidate allocates nothing.  A
/// `HashSet<Vec<I>>` here would clone every inserted word into its own heap
/// allocation and chase a pointer per equality check — on the multi-million
/// word suites of the larger policies that overhead rivals the actual test
/// execution time.
#[derive(Debug)]
struct WordSet<I> {
    arena: Vec<I>,
    /// `(hash, arena offset, length)`; empty slots have `len == EMPTY_SLOT`.
    slots: Vec<(u64, u32, u32)>,
    len: usize,
}

/// Length marker for an unoccupied [`WordSet`] slot (no real suite word gets
/// anywhere near `u32::MAX` symbols).
const EMPTY_SLOT: u32 = u32::MAX;

/// Feeds `elems` into `hasher` element by element (no length prefix — the
/// full word is always hashed, so the element sequence is the identity).
fn hash_elems<I: Hash>(hasher: &mut FxHasher, elems: &[I]) {
    for e in elems {
        e.hash(hasher);
    }
}

impl<I: Clone + Eq + Hash> WordSet<I> {
    fn new() -> Self {
        WordSet {
            arena: Vec::new(),
            slots: vec![(0, 0, EMPTY_SLOT); 1024],
            len: 0,
        }
    }

    /// Inserts `word` (whose element hash is `hash`) if it is not already
    /// present; returns `true` when the word was new.
    fn insert_slice(&mut self, word: &[I], hash: u64) -> bool {
        // Grow at 3/4 load so probe chains stay short.
        if (self.len + 1) * 4 > self.slots.len() * 3 {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = (hash as usize) & mask;
        loop {
            let (h, off, len) = self.slots[i];
            if len == EMPTY_SLOT {
                let off = u32::try_from(self.arena.len()).expect("suite arena exceeds u32 range");
                self.arena.extend_from_slice(word);
                self.slots[i] = (hash, off, word.len() as u32);
                self.len += 1;
                return true;
            }
            if h == hash
                && len as usize == word.len()
                && self.arena[off as usize..off as usize + len as usize] == *word
            {
                return false;
            }
            i = (i + 1) & mask;
        }
    }

    /// Doubles the table, re-slotting every entry by its stored hash (the
    /// arena is untouched).
    fn grow(&mut self) {
        let new_len = self.slots.len() * 2;
        let mask = new_len - 1;
        let mut slots = vec![(0, 0, EMPTY_SLOT); new_len];
        for &(h, off, len) in self.slots.iter().filter(|&&(_, _, len)| len != EMPTY_SLOT) {
            let mut i = (h as usize) & mask;
            while slots[i].2 != EMPTY_SLOT {
                i = (i + 1) & mask;
            }
            slots[i] = (h, off, len);
        }
        self.slots = slots;
    }
}

/// Odometer over the `prefixes × middles × w` product of a test suite,
/// advanced by repeated increments instead of the three divisions per word
/// the linear-cursor form costs on a multi-million-word suite.
#[derive(Debug, Clone, Copy)]
struct ProductCursor {
    prefix: usize,
    middle: usize,
    word: usize,
}

impl ProductCursor {
    fn start() -> Self {
        ProductCursor {
            prefix: 0,
            middle: 0,
            word: 0,
        }
    }

    /// Advances to the next (prefix, middle, word) triple, rolling the
    /// rightmost position fastest — the same order as the linear cursor.
    fn advance(&mut self, middles: usize, words: usize) {
        self.word += 1;
        if self.word == words {
            self.word = 0;
            self.middle += 1;
            if self.middle == middles {
                self.middle = 0;
                self.prefix += 1;
            }
        }
    }
}

/// Lazy W-method suite: `P · I^{≤k} · W` with `P` the transition cover and
/// `W` the characterization set, deduplicated, empty words skipped.
///
/// Constructed by [`w_method_suite_iter`].
#[derive(Debug)]
pub struct WMethodSuite<I> {
    prefixes: Vec<Vec<I>>,
    middles: Vec<Vec<I>>,
    w: Vec<Vec<I>>,
    /// Odometer over the `prefixes × middles × w` product.
    cursor: ProductCursor,
    seen: WordSet<I>,
    /// Reusable candidate buffer; the first `base.1` elements hold the
    /// `prefix · middle` base for the `(prefix, middle)` indices in `base.0`,
    /// whose element-hash state is cached in `base.2` (the suffix `w` rolls
    /// fastest, so the base survives `|W|` consecutive candidates).
    base: SuiteBase<I>,
}

/// Shared `prefix · middle` state of a suite iterator: the candidate scratch
/// buffer, the `(prefix, middle)` indices it was built from, the base length
/// within the scratch, and the hasher state after feeding the base elements.
#[derive(Debug)]
struct SuiteBase<I> {
    scratch: Vec<I>,
    key: (usize, usize),
    len: usize,
    hasher: FxHasher,
}

impl<I: Clone + Hash> SuiteBase<I> {
    fn new() -> Self {
        SuiteBase {
            scratch: Vec::new(),
            key: (usize::MAX, usize::MAX),
            len: 0,
            hasher: FxHasher::default(),
        }
    }

    /// Rebuilds the base from `prefix · middle` unless it is already current,
    /// then appends `suffix` and returns the full word's element hash.
    fn compose(&mut self, key: (usize, usize), prefix: &[I], middle: &[I], suffix: &[I]) -> u64 {
        if self.key != key {
            self.scratch.clear();
            self.scratch.extend_from_slice(prefix);
            self.scratch.extend_from_slice(middle);
            self.key = key;
            self.len = self.scratch.len();
            self.hasher = FxHasher::default();
            hash_elems(&mut self.hasher, &self.scratch);
        }
        self.scratch.truncate(self.len);
        self.scratch.extend_from_slice(suffix);
        let mut hasher = self.hasher;
        hash_elems(&mut hasher, suffix);
        hasher.finish()
    }
}

impl<I> Iterator for WMethodSuite<I>
where
    I: Clone + Eq + Hash,
{
    type Item = Vec<I>;

    fn next(&mut self) -> Option<Vec<I>> {
        if self.middles.is_empty() || self.w.is_empty() {
            // Degenerate machines over an empty input alphabet have an empty
            // characterization set and therefore an empty suite.
            return None;
        }
        loop {
            let ProductCursor {
                prefix: pi,
                middle: mi,
                word: wi,
            } = self.cursor;
            if pi >= self.prefixes.len() {
                return None;
            }
            self.cursor.advance(self.middles.len(), self.w.len());
            let hash =
                self.base
                    .compose((pi, mi), &self.prefixes[pi], &self.middles[mi], &self.w[wi]);
            let word = &self.base.scratch;
            if !word.is_empty() && self.seen.insert_slice(word, hash) {
                return Some(word.clone());
            }
        }
    }
}

/// Lazily yields the W-method test suite for extra depth `k`, in the same
/// order as [`w_method_suite`].
pub fn w_method_suite_iter<I, O>(machine: &Mealy<I, O>, k: usize) -> WMethodSuite<I>
where
    I: Clone + Eq + Hash + fmt::Debug,
    O: Clone + Eq + Hash + fmt::Debug,
{
    let (w, _) = characterization_set(machine);
    WMethodSuite {
        prefixes: transition_cover(machine),
        middles: words_up_to(machine.inputs(), k),
        w,
        cursor: ProductCursor::start(),
        seen: WordSet::new(),
        base: SuiteBase::new(),
    }
}

/// The W-method test suite for extra depth `k`, collected eagerly.
pub fn w_method_suite<I, O>(machine: &Mealy<I, O>, k: usize) -> Vec<Vec<I>>
where
    I: Clone + Eq + Hash + fmt::Debug,
    O: Clone + Eq + Hash + fmt::Debug,
{
    w_method_suite_iter(machine, k).collect()
}

/// Lazy Wp-method suite; see [`wp_method_suite_iter`].
///
/// Phase 1 checks the state cover against the full characterization set
/// (`S · I^{≤k} · W`); phase 2 checks the remaining transitions against the
/// identification sets of the states they reach (`R · I^{≤k} ⊗ Wp`).
#[derive(Debug)]
pub struct WpMethodSuite<'m, I, O> {
    machine: &'m Mealy<I, O>,
    cover: Vec<Vec<I>>,
    cover_set: FxHashSet<Vec<I>>,
    middles: Vec<Vec<I>>,
    w: Vec<Vec<I>>,
    identification: Vec<Vec<usize>>,
    /// Odometer over the phase-1 `cover × middles × w` product, or past its
    /// end once phase 2 begins.
    phase1_cursor: ProductCursor,
    /// Phase-2 position: (cover index, input index, middle index).
    transition: (usize, usize, usize),
    /// The current phase-2 base word and its identification set.
    base: Option<(Vec<I>, usize, usize)>, // (base word, reached state, next ident position)
    seen: WordSet<I>,
    /// Shared `cover × middle` base of the phase-1 product.
    phase1_base: SuiteBase<I>,
    /// Reusable phase-2 candidate buffer (`base · w`).
    phase2_scratch: Vec<I>,
}

impl<I, O> WpMethodSuite<'_, I, O>
where
    I: Clone + Eq + Hash + fmt::Debug,
    O: Clone + Eq + fmt::Debug,
{
    /// Advances the phase-2 state machine to the next base word, if any.
    fn advance_base(&mut self) -> bool {
        let inputs = self.machine.inputs();
        if inputs.is_empty() {
            // Degenerate machines over an empty alphabet have no transitions
            // to test.
            return false;
        }
        let (mut ci, mut ii, mut mi) = self.transition;
        // Moves to the next transition word, resetting the middle index.
        let next_transition = |ci: usize, ii: usize| {
            if ii + 1 >= inputs.len() {
                (ci + 1, 0, 0)
            } else {
                (ci, ii + 1, 0)
            }
        };
        while ci < self.cover.len() {
            let mut transition_word = self.cover[ci].clone();
            transition_word.push(inputs[ii].clone());
            if self.cover_set.contains(&transition_word) {
                (ci, ii, mi) = next_transition(ci, ii);
                continue;
            }
            if mi < self.middles.len() {
                let mut base = transition_word;
                base.extend(self.middles[mi].iter().cloned());
                let reached = self.machine.delta(self.machine.initial(), base.iter());
                self.transition = (ci, ii, mi + 1);
                self.base = Some((base, reached.index(), 0));
                return true;
            }
            (ci, ii, mi) = next_transition(ci, ii);
        }
        self.transition = (ci, ii, mi);
        false
    }
}

impl<I, O> Iterator for WpMethodSuite<'_, I, O>
where
    I: Clone + Eq + Hash + fmt::Debug,
    O: Clone + Eq + fmt::Debug,
{
    type Item = Vec<I>;

    fn next(&mut self) -> Option<Vec<I>> {
        // Phase 1: state cover × I^{≤k} × W.
        if !self.middles.is_empty() && !self.w.is_empty() {
            loop {
                let ProductCursor {
                    prefix: ci,
                    middle: mi,
                    word: wi,
                } = self.phase1_cursor;
                if ci >= self.cover.len() {
                    break;
                }
                self.phase1_cursor.advance(self.middles.len(), self.w.len());
                let hash = self.phase1_base.compose(
                    (ci, mi),
                    &self.cover[ci],
                    &self.middles[mi],
                    &self.w[wi],
                );
                let word = &self.phase1_base.scratch;
                if !word.is_empty() && self.seen.insert_slice(word, hash) {
                    return Some(word.clone());
                }
            }
        }

        // Phase 2: transitions not in the state cover × I^{≤k} × the
        // identification set of the state the word reaches in the hypothesis.
        loop {
            if let Some((base, reached, ident_pos)) = &mut self.base {
                let ident = &self.identification[*reached];
                while *ident_pos < ident.len() {
                    let wi = ident[*ident_pos];
                    *ident_pos += 1;
                    self.phase2_scratch.clear();
                    self.phase2_scratch.extend_from_slice(base);
                    self.phase2_scratch.extend_from_slice(&self.w[wi]);
                    let mut hasher = FxHasher::default();
                    hash_elems(&mut hasher, &self.phase2_scratch);
                    let word = &self.phase2_scratch;
                    if self.seen.insert_slice(word, hasher.finish()) {
                        return Some(word.clone());
                    }
                }
                self.base = None;
            }
            if !self.advance_base() {
                return None;
            }
        }
    }
}

/// Lazily yields the Wp-method test suite for extra depth `k`, in the same
/// order as [`wp_method_suite`].
pub fn wp_method_suite_iter<I, O>(machine: &Mealy<I, O>, k: usize) -> WpMethodSuite<'_, I, O>
where
    I: Clone + Eq + Hash + fmt::Debug,
    O: Clone + Eq + Hash + fmt::Debug,
{
    let cover = state_cover(machine);
    let (w, identification) = characterization_set(machine);
    WpMethodSuite {
        machine,
        cover_set: cover.iter().cloned().collect(),
        cover,
        middles: words_up_to(machine.inputs(), k),
        w,
        identification,
        phase1_cursor: ProductCursor::start(),
        transition: (0, 0, 0),
        base: None,
        seen: WordSet::new(),
        phase1_base: SuiteBase::new(),
        phase2_scratch: Vec::new(),
    }
}

/// The Wp-method test suite for extra depth `k`, collected eagerly.
pub fn wp_method_suite<I, O>(machine: &Mealy<I, O>, k: usize) -> Vec<Vec<I>>
where
    I: Clone + Eq + Hash + fmt::Debug,
    O: Clone + Eq + Hash + fmt::Debug,
{
    wp_method_suite_iter(machine, k).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use automata::MealyBuilder;

    fn three_state() -> Mealy<&'static str, u8> {
        let mut b = MealyBuilder::new(vec!["a", "b"]);
        let s: Vec<_> = (0..3).map(|_| b.add_state()).collect();
        for i in 0..3 {
            b.add_transition(s[i], "a", s[(i + 1) % 3], 0);
            b.add_transition(s[i], "b", s[i], i as u8);
        }
        b.build(s[0]).unwrap()
    }

    #[test]
    fn state_cover_reaches_every_state_shortest_first() {
        let m = three_state();
        let cover = state_cover(&m);
        assert_eq!(cover.len(), 3);
        assert_eq!(cover[0], Vec::<&str>::new());
        assert_eq!(cover[1], vec!["a"]);
        assert_eq!(cover[2], vec!["a", "a"]);
        for (i, word) in cover.iter().enumerate() {
            assert_eq!(m.delta(m.initial(), word.iter()).index(), i);
        }
    }

    #[test]
    fn transition_cover_contains_all_one_step_extensions() {
        let m = three_state();
        let tc = transition_cover(&m);
        assert_eq!(tc.len(), 3 + 3 * 2);
    }

    #[test]
    fn characterization_set_separates_all_state_pairs() {
        let m = three_state();
        let (w, ident) = characterization_set(&m);
        assert!(!w.is_empty());
        for a in 0..3 {
            for b in (a + 1)..3 {
                let separated = w.iter().any(|word| {
                    let run = |s: usize| {
                        let mut state = StateId::new(s);
                        let mut outputs = Vec::new();
                        for i in word {
                            let (next, o) = m.step(state, i);
                            outputs.push(o);
                            state = next;
                        }
                        outputs
                    };
                    run(a) != run(b)
                });
                assert!(separated, "states {a} and {b} not separated by W");
            }
        }
        assert_eq!(ident.len(), 3);
        assert!(ident.iter().all(|ws| !ws.is_empty()));
    }

    #[test]
    fn single_state_machines_get_a_nonempty_suite() {
        let mut b = MealyBuilder::new(vec!["x"]);
        let s = b.add_state();
        b.add_transition(s, "x", s, 1u8);
        let m = b.build(s).unwrap();
        let (w, _) = characterization_set(&m);
        assert_eq!(w.len(), 1);
        assert!(!w_method_suite(&m, 1).is_empty());
    }

    #[test]
    fn wp_suite_is_no_larger_than_w_suite() {
        let m = three_state();
        let w_suite = w_method_suite(&m, 1);
        let wp_suite = wp_method_suite(&m, 1);
        assert!(!wp_suite.is_empty());
        assert!(wp_suite.len() <= w_suite.len());
    }

    #[test]
    fn suites_contain_no_duplicates_or_empty_words() {
        let m = three_state();
        for suite in [w_method_suite(&m, 1), wp_method_suite(&m, 2)] {
            let mut seen = std::collections::HashSet::new();
            for word in &suite {
                assert!(!word.is_empty());
                assert!(seen.insert(word.clone()), "duplicate word {word:?}");
            }
        }
    }

    #[test]
    fn lazy_and_eager_suites_agree() {
        let m = three_state();
        for k in [0usize, 1, 2] {
            let eager_w = w_method_suite(&m, k);
            let lazy_w: Vec<_> = w_method_suite_iter(&m, k).collect();
            assert_eq!(eager_w, lazy_w);
            let eager_wp = wp_method_suite(&m, k);
            let lazy_wp: Vec<_> = wp_method_suite_iter(&m, k).collect();
            assert_eq!(eager_wp, lazy_wp);
        }
    }

    #[test]
    fn lazy_suites_yield_without_full_materialization() {
        // Pulling a handful of words from a lazy suite must work (the whole
        // point: failing equivalence queries never build the full suite).
        let m = three_state();
        let first: Vec<_> = wp_method_suite_iter(&m, 2).take(3).collect();
        assert_eq!(first.len(), 3);
        assert_eq!(first, wp_method_suite(&m, 2)[..3].to_vec());
    }

    #[test]
    fn words_up_to_counts() {
        let words = words_up_to(&["a", "b"], 2);
        // ε, 2 words of length 1, 4 of length 2.
        assert_eq!(words.len(), 7);
    }

    #[test]
    fn empty_alphabet_machines_get_empty_suites() {
        // Degenerate but constructible: a machine with no inputs.  The lazy
        // iterators must terminate with an empty suite (as the eager
        // functions always did) instead of panicking.
        let mut b: MealyBuilder<&str, u8> = MealyBuilder::new(vec![]);
        let s = b.add_state();
        let m = b.build(s).unwrap();
        assert_eq!(w_method_suite(&m, 1), Vec::<Vec<&str>>::new());
        assert_eq!(wp_method_suite(&m, 1), Vec::<Vec<&str>>::new());
    }
}
