//! A thread-safe prefix-trie memoization layer for membership queries.
//!
//! Active learning is query-bound (§3.1): the dominant cost of a run is the
//! number of words the teacher has to execute, and both the observation table
//! and the conformance test suites of the W/Wp-method re-ask heavily
//! overlapping words.  Because the systems under learning are deterministic,
//! output words are *prefix-consistent*: the answer to `w` determines the
//! answer to every prefix of `w`.  A prefix trie therefore memoizes an entire
//! query family in space proportional to the number of distinct symbols seen,
//! where a per-word map would store every prefix as a separate key.
//!
//! [`QueryCache`] is the shared trie: nodes live in one contiguous arena (an
//! index-linked `Vec`, which keeps lookups cache-friendly), lookups take a
//! read lock, insertions a write lock, and the hit/miss counters are atomics,
//! so one cache instance can sit behind every worker of a
//! [`QueryPool`](crate::QueryPool) at once.  It is also the *central* query
//! counter of a learning run — membership statistics are derived from the
//! cache layer instead of trusting every oracle implementation to count for
//! itself.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{PoisonError, RwLock};

use crate::oracle::OracleError;

/// One arena slot: the output of the symbol labelling the edge that leads
/// here, plus the children as `(symbol, arena index)` pairs.
///
/// Children are kept in a plain vector with linear scanning: learning
/// alphabets are tiny (`associativity + 1` symbols for replacement policies),
/// so a vector beats a hash map on both memory and lookup time.
#[derive(Debug)]
struct Node<I, O> {
    output: O,
    children: Vec<(I, u32)>,
}

/// The arena: all nodes plus the root's child list.
#[derive(Debug, Default)]
struct Trie<I, O> {
    nodes: Vec<Node<I, O>>,
    roots: Vec<(I, u32)>,
}

impl<I: Eq, O> Trie<I, O> {
    fn child(&self, children: &[(I, u32)], symbol: &I) -> Option<u32> {
        children
            .iter()
            .find(|(i, _)| i == symbol)
            .map(|&(_, index)| index)
    }
}

/// Resumable trie position for runs of lookups over prefix-sharing words.
///
/// Conformance suites enumerate `prefix · middle · suffix` products, so
/// consecutive test words share long prefixes; a cursor lets
/// [`QueryCache::check_against_resumed`] skip re-walking the shared part.
/// The cursor stores the arena path of the last verified-agreeing prefix —
/// valid across calls because the arena is append-only (nodes are never
/// moved or mutated once recorded).
#[derive(Debug, Default)]
pub struct TrieCursor {
    /// `path[d]` is the arena index of the node matching symbol `d` of the
    /// last checked word, for every position that was walked *and* agreed
    /// with the prediction.
    path: Vec<u32>,
}

impl TrieCursor {
    /// Creates an empty cursor (next check walks from the root).
    pub fn new() -> Self {
        TrieCursor::default()
    }
}

/// Verdict of [`QueryCache::check_against`]: what the cache knows about a
/// word compared to a predicted output word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheVerdict {
    /// Every cached position agrees with the prediction, and the whole word
    /// is cached: the prediction is correct.
    Match,
    /// The cached outputs contradict the prediction first at this position
    /// (a conformance-test failure, answered without touching the oracle).
    Mismatch(usize),
    /// The word is not fully cached and the cached part agrees with the
    /// prediction: the oracle must be consulted.
    Unknown,
}

/// A concurrent prefix-trie cache for membership-query outputs.
///
/// The cache exploits prefix-closedness: recording the answer to a word also
/// records the answer to every prefix of that word, and a lookup succeeds for
/// any word that is a prefix of (or equal to) a previously recorded word.
///
/// Recording an output that contradicts an already-stored one fails with an
/// [`OracleError`] — for deterministic systems this can only happen when the
/// system under learning misbehaves (the nondeterminism signal of §7.1), and
/// silently keeping either answer would corrupt the observation table.
///
/// # Example
///
/// ```
/// use learning::QueryCache;
///
/// let cache: QueryCache<char, bool> = QueryCache::new();
/// assert_eq!(cache.lookup(&['a', 'b']), None);
/// // `record` returns how many fresh trie nodes the word contributed.
/// assert_eq!(cache.record(&['a', 'b'], &[true, false]).unwrap(), 2);
/// // The word itself and all its prefixes are now cached.
/// assert_eq!(cache.lookup(&['a', 'b']), Some(vec![true, false]));
/// assert_eq!(cache.lookup(&['a']), Some(vec![true]));
/// assert_eq!((cache.hits(), cache.misses()), (2, 1));
/// ```
#[derive(Debug, Default)]
pub struct QueryCache<I, O> {
    trie: RwLock<Trie<I, O>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<I, O> QueryCache<I, O>
where
    I: Clone + Eq,
    O: Clone + PartialEq,
{
    /// Creates an empty cache.
    pub fn new() -> Self {
        QueryCache {
            trie: RwLock::new(Trie {
                nodes: Vec::new(),
                roots: Vec::new(),
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Returns the memoized output word for `word` if every symbol of it is
    /// cached, updating the hit/miss counters.
    ///
    /// The empty word always hits (its output word is empty).
    pub fn lookup(&self, word: &[I]) -> Option<Vec<O>> {
        let trie = self.trie.read().unwrap_or_else(PoisonError::into_inner);
        let mut children = &trie.roots;
        let mut outputs = Vec::with_capacity(word.len());
        for symbol in word {
            let Some(index) = trie.child(children, symbol) else {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            };
            let node = &trie.nodes[index as usize];
            outputs.push(node.output.clone());
            children = &node.children;
        }
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(outputs)
    }

    /// Compares `word` against a `predicted` output word without cloning any
    /// outputs — the allocation-free fast path of conformance testing.
    ///
    /// A [`CacheVerdict::Mismatch`] can be produced from a cached *prefix*
    /// alone (the first divergence already proves the test fails), so this
    /// can refute a hypothesis even for words the oracle never ran.
    /// `Match`/`Mismatch` count as cache hits, `Unknown` as a miss.
    pub fn check_against(&self, word: &[I], predicted: &[O]) -> CacheVerdict {
        debug_assert_eq!(word.len(), predicted.len());
        let trie = self.trie.read().unwrap_or_else(PoisonError::into_inner);
        let mut children = &trie.roots;
        for (position, (symbol, predicted_output)) in word.iter().zip(predicted).enumerate() {
            let Some(index) = trie.child(children, symbol) else {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return CacheVerdict::Unknown;
            };
            let node = &trie.nodes[index as usize];
            if node.output != *predicted_output {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return CacheVerdict::Mismatch(position);
            }
            children = &node.children;
        }
        self.hits.fetch_add(1, Ordering::Relaxed);
        CacheVerdict::Match
    }

    /// [`check_against`](Self::check_against) resuming from a cursor: the
    /// first `lcp` entries of `cursor` must come from a previous call whose
    /// word shared `lcp` symbols with `word` *and* whose predicted outputs
    /// agreed on that prefix (true for conformance testing, where a
    /// disagreeing prefix ends the suite run).  The walk then starts at
    /// position `min(lcp, cursor depth)` instead of the root.
    ///
    /// Counting is identical to `check_against` — exactly one hit
    /// (`Match`/`Mismatch`) or miss (`Unknown`) per call — so resuming never
    /// changes a run's membership-query statistics, only its wall time.
    pub fn check_against_resumed(
        &self,
        word: &[I],
        predicted: &[O],
        lcp: usize,
        cursor: &mut TrieCursor,
    ) -> CacheVerdict {
        debug_assert_eq!(word.len(), predicted.len());
        debug_assert!(lcp <= word.len());
        let trie = self.trie.read().unwrap_or_else(PoisonError::into_inner);
        cursor.path.truncate(lcp.min(cursor.path.len()));
        let mut children = match cursor.path.last() {
            None => &trie.roots,
            Some(&index) => &trie.nodes[index as usize].children,
        };
        for position in cursor.path.len()..word.len() {
            let Some(index) = trie.child(children, &word[position]) else {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return CacheVerdict::Unknown;
            };
            let node = &trie.nodes[index as usize];
            if node.output != predicted[position] {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return CacheVerdict::Mismatch(position);
            }
            cursor.path.push(index);
            children = &node.children;
        }
        self.hits.fetch_add(1, Ordering::Relaxed);
        CacheVerdict::Match
    }

    /// Records the output word of `word` (and, implicitly, of all its
    /// prefixes), returning how many *fresh* trie nodes the word contributed
    /// (zero when the whole word was already cached).
    ///
    /// The count is exact even on failure: a contradiction is only detectable
    /// on the already-recorded part of the walk, which precedes the first
    /// fresh insertion — so an `Err` means the trie was left untouched.
    ///
    /// # Errors
    ///
    /// Fails if `outputs` has the wrong length or contradicts a previously
    /// recorded answer — the deterministic-system invariant every learner in
    /// this crate relies on.
    pub fn record(&self, word: &[I], outputs: &[O]) -> Result<usize, OracleError> {
        if word.len() != outputs.len() {
            return Err(OracleError::new(format!(
                "cannot cache {} outputs for a word of length {}",
                outputs.len(),
                word.len()
            )));
        }
        let mut trie = self.trie.write().unwrap_or_else(PoisonError::into_inner);
        // Walk with explicit "root or node index" positions: arena nodes are
        // appended while walking, so child lists are re-borrowed per step.
        let mut position: Option<u32> = None;
        let mut inserted = 0usize;
        for (offset, (symbol, output)) in word.iter().zip(outputs).enumerate() {
            let children = match position {
                None => &trie.roots,
                Some(index) => &trie.nodes[index as usize].children,
            };
            if let Some(existing) = trie.child(children, symbol) {
                if trie.nodes[existing as usize].output != *output {
                    return Err(OracleError::new(format!(
                        "inconsistent oracle answers: position {offset} of a \
                         repeated prefix produced a different output (the system \
                         under learning is behaving non-deterministically)"
                    )));
                }
                position = Some(existing);
                continue;
            }
            let fresh = trie.nodes.len() as u32;
            trie.nodes.push(Node {
                output: output.clone(),
                children: Vec::new(),
            });
            match position {
                None => trie.roots.push((symbol.clone(), fresh)),
                Some(index) => trie.nodes[index as usize]
                    .children
                    .push((symbol.clone(), fresh)),
            }
            position = Some(fresh);
            inserted += 1;
        }
        Ok(inserted)
    }

    /// Drops every recorded word, returning how many trie nodes were
    /// discarded.  The hit/miss counters are deliberately *not* reset: they
    /// are lifetime lookup statistics, and eviction must not erase the
    /// history a hit-rate dashboard is built on.
    ///
    /// Existing handles to this cache stay valid — subsequent lookups simply
    /// miss, exactly as if the entries had never been recorded.
    pub fn clear(&self) -> u64 {
        let mut trie = self.trie.write().unwrap_or_else(PoisonError::into_inner);
        let dropped = trie.nodes.len() as u64;
        trie.nodes = Vec::new();
        trie.roots = Vec::new();
        dropped
    }

    /// Number of lookups answered from the trie.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of lookups that could not be answered.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// One *consistent* `(hits, misses)` snapshot.
    ///
    /// Every lookup path bumps its counter while still holding the trie's
    /// read lock, so taking the write lock here excludes in-flight lookups:
    /// the two loads can never straddle another thread's increment the way
    /// two separate [`hits`](Self::hits)/[`misses`](Self::misses) calls can.
    /// Use this wherever both numbers are rendered together (hit rates,
    /// stats responses); use the individual getters for single counters.
    pub fn counts(&self) -> (u64, u64) {
        let _guard = self.trie.write().unwrap_or_else(PoisonError::into_inner);
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Total number of lookups (hits + misses): the central membership-query
    /// count of everything routed through this cache.
    pub fn total_lookups(&self) -> u64 {
        self.hits() + self.misses()
    }

    /// Every *maximal* recorded word (root-to-leaf path of the trie) with
    /// its output word.  Because the trie is prefix-closed, re-recording the
    /// maximal words reconstructs the whole cache — which is exactly what a
    /// plain-text export/import needs.
    pub fn maximal_entries(&self) -> Vec<(Vec<I>, Vec<O>)> {
        fn walk<I: Clone + Eq, O: Clone + PartialEq>(
            trie: &Trie<I, O>,
            children: &[(I, u32)],
            word: &mut Vec<I>,
            outputs: &mut Vec<O>,
            result: &mut Vec<(Vec<I>, Vec<O>)>,
        ) {
            if children.is_empty() {
                if !word.is_empty() {
                    result.push((word.clone(), outputs.clone()));
                }
                return;
            }
            for (symbol, index) in children {
                let node = &trie.nodes[*index as usize];
                word.push(symbol.clone());
                outputs.push(node.output.clone());
                walk(trie, &node.children, word, outputs, result);
                word.pop();
                outputs.pop();
            }
        }
        let trie = self.trie.read().unwrap_or_else(PoisonError::into_inner);
        let mut result = Vec::new();
        walk(
            &trie,
            &trie.roots,
            &mut Vec::new(),
            &mut Vec::new(),
            &mut result,
        );
        result
    }

    /// Estimated heap footprint of the trie, in bytes: the node arena plus
    /// the capacity of every child edge list.  An estimate — allocator
    /// headers and the fixed cost of the lock and counters are not included
    /// — but it tracks growth faithfully, which is what capacity planning
    /// (the `cqd` per-namespace store report) needs.
    pub fn approx_bytes(&self) -> u64 {
        use std::mem::size_of;
        let trie = self.trie.read().unwrap_or_else(PoisonError::into_inner);
        let edge = size_of::<(I, u32)>();
        let mut bytes = trie.nodes.capacity() * size_of::<Node<I, O>>();
        bytes += trie.roots.capacity() * edge;
        for node in &trie.nodes {
            bytes += node.children.capacity() * edge;
        }
        bytes as u64
    }

    /// Number of trie nodes, i.e. distinct cached prefixes.
    pub fn entries(&self) -> u64 {
        self.trie
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .nodes
            .len() as u64
    }

    /// Fraction of lookups served from the trie (`0.0` when nothing was
    /// looked up yet), computed from one consistent [`counts`](Self::counts)
    /// snapshot.
    pub fn hit_rate(&self) -> f64 {
        let (hits, misses) = self.counts();
        let total = hits + misses;
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_misses_until_recorded() {
        let cache: QueryCache<u8, u8> = QueryCache::new();
        assert_eq!(cache.lookup(&[1, 2]), None);
        cache.record(&[1, 2, 3], &[10, 20, 30]).unwrap();
        assert_eq!(cache.lookup(&[1, 2]), Some(vec![10, 20]));
        assert_eq!(cache.lookup(&[1, 2, 3]), Some(vec![10, 20, 30]));
        assert_eq!(cache.lookup(&[1, 3]), None);
        assert_eq!(cache.entries(), 3);
    }

    #[test]
    fn empty_word_always_hits() {
        let cache: QueryCache<u8, u8> = QueryCache::new();
        assert_eq!(cache.lookup(&[]), Some(vec![]));
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn overlapping_words_share_nodes() {
        let cache: QueryCache<u8, u8> = QueryCache::new();
        assert_eq!(cache.record(&[1, 2], &[10, 20]).unwrap(), 2);
        // The shared prefix `1` is stored once, so only `3` is fresh here.
        assert_eq!(cache.record(&[1, 3], &[10, 30]).unwrap(), 1);
        assert_eq!(cache.entries(), 3);
        // Re-recording a fully cached word contributes nothing.
        assert_eq!(cache.record(&[1, 2], &[10, 20]).unwrap(), 0);
    }

    #[test]
    fn contradictions_leave_the_trie_untouched() {
        let cache: QueryCache<u8, u8> = QueryCache::new();
        cache.record(&[1, 2], &[10, 20]).unwrap();
        let before = cache.entries();
        // The contradiction is on the recorded part of the walk, so no fresh
        // node can have been inserted — the exactness `record`'s return value
        // (and the store's entry accounting) relies on.
        assert!(cache.record(&[1, 2, 3], &[10, 99, 30]).is_err());
        assert_eq!(cache.entries(), before);
    }

    #[test]
    fn clear_drops_entries_but_keeps_lookup_history() {
        let cache: QueryCache<u8, u8> = QueryCache::new();
        cache.record(&[1, 2, 3], &[10, 20, 30]).unwrap();
        cache.lookup(&[1, 2]);
        assert_eq!(cache.clear(), 3);
        assert_eq!(cache.entries(), 0);
        assert_eq!(cache.lookup(&[1, 2]), None);
        // Lifetime lookup statistics survive the eviction.
        assert_eq!(cache.counts(), (1, 1));
        // The cache is reusable after a clear.
        assert_eq!(cache.record(&[4], &[40]).unwrap(), 1);
        assert_eq!(cache.entries(), 1);
    }

    #[test]
    fn counts_matches_the_individual_getters_when_quiescent() {
        let cache: QueryCache<u8, u8> = QueryCache::new();
        cache.lookup(&[9]);
        cache.record(&[9], &[90]).unwrap();
        cache.lookup(&[9]);
        assert_eq!(cache.counts(), (cache.hits(), cache.misses()));
    }

    #[test]
    fn contradictory_answers_are_rejected() {
        let cache: QueryCache<u8, u8> = QueryCache::new();
        cache.record(&[1, 2], &[10, 20]).unwrap();
        assert!(cache.record(&[1, 2], &[10, 99]).is_err());
        assert!(cache.record(&[1], &[11]).is_err());
        // Consistent re-recording is fine.
        cache.record(&[1, 2], &[10, 20]).unwrap();
    }

    #[test]
    fn length_mismatches_are_rejected() {
        let cache: QueryCache<u8, u8> = QueryCache::new();
        assert!(cache.record(&[1, 2], &[10]).is_err());
    }

    #[test]
    fn counters_track_hits_and_misses() {
        let cache: QueryCache<u8, u8> = QueryCache::new();
        cache.lookup(&[5]);
        cache.record(&[5], &[50]).unwrap();
        cache.lookup(&[5]);
        cache.lookup(&[5]);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.total_lookups(), 3);
        assert!((cache.hit_rate() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn check_against_classifies_predictions() {
        let cache: QueryCache<u8, u8> = QueryCache::new();
        cache.record(&[1, 2, 3], &[10, 20, 30]).unwrap();
        // Fully cached, agreeing prediction.
        assert_eq!(
            cache.check_against(&[1, 2, 3], &[10, 20, 30]),
            CacheVerdict::Match
        );
        // Cached prefix already contradicts the prediction — even though the
        // tail [9] was never cached.
        assert_eq!(
            cache.check_against(&[1, 2, 9], &[10, 99, 0]),
            CacheVerdict::Mismatch(1)
        );
        // Agreeing prefix, uncached tail: undecidable from the cache.
        assert_eq!(
            cache.check_against(&[1, 2, 9], &[10, 20, 0]),
            CacheVerdict::Unknown
        );
    }

    #[test]
    fn maximal_entries_cover_the_whole_trie() {
        let cache: QueryCache<u8, u8> = QueryCache::new();
        cache.record(&[1, 2, 3], &[10, 20, 30]).unwrap();
        cache.record(&[1, 4], &[10, 40]).unwrap();
        let mut entries = cache.maximal_entries();
        entries.sort();
        assert_eq!(
            entries,
            vec![
                (vec![1, 2, 3], vec![10, 20, 30]),
                (vec![1, 4], vec![10, 40]),
            ]
        );
        // Re-recording the maximal words reconstructs an identical trie.
        let copy: QueryCache<u8, u8> = QueryCache::new();
        for (word, outputs) in cache.maximal_entries() {
            copy.record(&word, &outputs).unwrap();
        }
        assert_eq!(copy.entries(), cache.entries());
    }

    #[test]
    fn approx_bytes_grows_with_the_trie() {
        let cache: QueryCache<u8, u8> = QueryCache::new();
        assert_eq!(cache.approx_bytes(), 0);
        cache.record(&[1, 2, 3], &[10, 20, 30]).unwrap();
        let small = cache.approx_bytes();
        assert!(small > 0);
        for i in 100..132u8 {
            cache.record(&[1, 2, i], &[10, 20, i]).unwrap();
        }
        assert!(cache.approx_bytes() > small);
    }

    #[test]
    fn cache_is_shareable_across_threads() {
        use std::sync::Arc;
        let cache: Arc<QueryCache<u8, u8>> = Arc::new(QueryCache::new());
        std::thread::scope(|scope| {
            for t in 0..4u8 {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..16u8 {
                        cache.record(&[t, i], &[t, i.wrapping_mul(2)]).unwrap();
                    }
                });
            }
        });
        for t in 0..4u8 {
            for i in 0..16u8 {
                assert_eq!(cache.lookup(&[t, i]), Some(vec![t, i.wrapping_mul(2)]));
            }
        }
    }
}
