//! Oracle factories and the shared query pool: memoized, parallel membership
//! queries for the learner.
//!
//! The paper's learning runs are query-bound (§3.1, §6): every improvement to
//! how membership queries are answered translates directly into wall-clock
//! time.  This module attacks the dominant term twice:
//!
//! * **Memoization** — every query is routed through one shared
//!   [`QueryCache`] prefix trie, so repeated words (and prefixes of longer
//!   words) never reach the underlying system again;
//! * **Parallelism** — the [`OracleFactory`] abstraction mints independent
//!   per-worker oracles, which lets [`QueryPool::run_tests`] shard a
//!   W/Wp-method conformance suite across a `std::thread` worker pool with
//!   counterexample short-circuiting.
//!
//! The worker count defaults to the machine's available parallelism and can
//! be pinned with the [`WORKERS_ENV`] (`CACHEQUERY_WORKERS`) environment
//! variable or the `workers` field of
//! [`LearnOptions`](crate::LearnOptions).

use std::fmt;
use std::hash::Hash;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use automata::Mealy;

use crate::cache::{CacheVerdict, QueryCache, TrieCursor};
use crate::oracle::{MembershipOracle, OracleError};

/// Environment variable overriding the default worker count of a
/// [`QueryPool`] (`0` or unset means "use the available parallelism").
pub const WORKERS_ENV: &str = "CACHEQUERY_WORKERS";

/// Below this many outstanding words a parallel stage falls back to the
/// sequential path: thread hand-off costs more than the queries themselves.
const MIN_PARALLEL_ITEMS: usize = 32;

/// First chunk pulled from a lazy conformance suite.  Small, because most
/// equivalence queries during learning fail within the first few tests.
const FIRST_CHUNK: usize = 64;

/// Chunk growth factor: amortizes chunking overhead for the final, fully
/// passing equivalence query without giving up early short-circuiting.
const CHUNK_GROWTH: usize = 4;

/// Upper bound on the chunk size.
const MAX_CHUNK: usize = 16_384;

/// A factory of independent membership oracles over the same system under
/// learning.
///
/// This is the cloneable abstraction the parallel conformance tester is built
/// on: each worker thread drives its *own* oracle instance (`Send`, created
/// by the factory), so oracles never need internal locking.  Every closure
/// `Fn() -> M` producing an oracle is a factory, which keeps call sites
/// short.
///
/// For replacement-policy learning the factory contract is exactly the
/// `probeCache` contract of Algorithm 1: every instance must answer from the
/// same fixed initial cache state, so instances are interchangeable and their
/// answers can be memoized in one shared [`QueryCache`].
///
/// # Example
///
/// ```
/// use automata::MealyBuilder;
/// use learning::{MembershipOracle, MealyOracle, OracleFactory};
///
/// let mut b = MealyBuilder::new(vec!['t']);
/// let s = b.add_state();
/// b.add_transition(s, 't', s, 7u8);
/// let machine = b.build(s).unwrap();
///
/// // A closure cloning the target is already an `OracleFactory`.
/// let factory = move || MealyOracle::new(machine.clone());
/// let mut first = factory.make_oracle();
/// let mut second = factory.make_oracle();
/// assert_eq!(
///     first.query(&['t']).unwrap(),
///     second.query(&['t']).unwrap(),
/// );
/// ```
pub trait OracleFactory<I, O> {
    /// Creates a fresh, independent oracle for the system under learning.
    fn make_oracle(&self) -> Box<dyn MembershipOracle<I, O> + Send>;
}

impl<I, O, M, F> OracleFactory<I, O> for F
where
    F: Fn() -> M,
    M: MembershipOracle<I, O> + Send + 'static,
{
    fn make_oracle(&self) -> Box<dyn MembershipOracle<I, O> + Send> {
        Box::new(self())
    }
}

/// Result of running one conformance test suite through
/// [`QueryPool::run_tests`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuiteOutcome<I> {
    /// The counterexample with the smallest suite index, truncated to its
    /// shortest failing prefix — or `None` if the whole suite passed.
    pub counterexample: Option<Vec<I>>,
    /// Number of test words actually executed (short-circuiting makes this
    /// smaller than the suite for failing hypotheses).
    pub tests_executed: u64,
    /// Number of worker shards the suite was split into (1 for the
    /// sequential path).
    pub shards: u64,
}

/// The shared query engine of a learning run: one prefix-trie cache, one
/// local oracle for sequential queries, and a set of per-worker oracles for
/// parallel stages.
///
/// The pool is the single entry point for every membership query of the
/// learner — observation-table filling, Rivest–Schapire analysis, and
/// conformance testing all go through it — which makes the cache's counters
/// the authoritative query statistics of the run.
///
/// `QueryPool` itself implements [`MembershipOracle`], so code written
/// against the plain oracle interface composes with it directly.
///
/// # Example
///
/// ```
/// use automata::MealyBuilder;
/// use learning::{MealyOracle, QueryPool};
///
/// let mut b = MealyBuilder::new(vec!['t']);
/// let s = b.add_state();
/// b.add_transition(s, 't', s, 1u8);
/// let machine = b.build(s).unwrap();
///
/// let factory = move || MealyOracle::new(machine.clone());
/// let mut pool = QueryPool::new(&factory, 1, true);
/// assert_eq!(pool.query_word(&['t', 't']).unwrap(), vec![1, 1]);
/// // The repeat is served from the shared prefix trie.
/// assert_eq!(pool.query_word(&['t', 't']).unwrap(), vec![1, 1]);
/// assert_eq!((pool.cache_hits(), pool.cache_misses()), (1, 1));
/// ```
pub struct QueryPool<'f, I, O> {
    factory: &'f dyn OracleFactory<I, O>,
    cache: Option<Arc<QueryCache<I, O>>>,
    local: Box<dyn MembershipOracle<I, O> + Send>,
    workers: Vec<Box<dyn MembershipOracle<I, O> + Send>>,
    worker_target: usize,
    uncached_queries: u64,
    tests_run: u64,
    shards_run: u64,
}

impl<I, O> fmt::Debug for QueryPool<'_, I, O> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("QueryPool")
            .field("memoized", &self.cache.is_some())
            .field("workers", &self.worker_target)
            .field("tests_run", &self.tests_run)
            .finish_non_exhaustive()
    }
}

/// Resolves a requested worker count: explicit values win, then
/// [`WORKERS_ENV`], then the machine's available parallelism.
fn resolve_workers(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    if let Some(n) = std::env::var(WORKERS_ENV)
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Queries `oracle` for `word` and enforces the one-output-per-symbol
/// contract — every oracle-facing path validates, so a truncated answer from
/// a misbehaving backend errors instead of silently passing comparisons.
fn query_validated<I, O>(
    oracle: &mut dyn MembershipOracle<I, O>,
    word: &[I],
) -> Result<Vec<O>, OracleError> {
    let outputs = oracle.query(word)?;
    if outputs.len() != word.len() {
        return Err(OracleError::new(format!(
            "oracle returned {} outputs for a word of length {}",
            outputs.len(),
            word.len()
        )));
    }
    Ok(outputs)
}

/// Answers one word through the cache (when present) or the given oracle,
/// recording fresh answers.  Shared by the sequential and worker paths.
fn query_via<I, O>(
    cache: Option<&QueryCache<I, O>>,
    oracle: &mut dyn MembershipOracle<I, O>,
    word: &[I],
) -> Result<Vec<O>, OracleError>
where
    I: Clone + Eq,
    O: Clone + PartialEq,
{
    if let Some(cache) = cache {
        if let Some(outputs) = cache.lookup(word) {
            return Ok(outputs);
        }
    }
    let outputs = query_validated(oracle, word)?;
    if let Some(cache) = cache {
        cache.record(word, &outputs)?;
    }
    Ok(outputs)
}

/// Compares an output word against the hypothesis prediction and returns the
/// shortest failing prefix of `word`, if any.
pub(crate) fn shortest_failing_prefix<I, O>(
    word: &[I],
    actual: &[O],
    predicted: &[O],
) -> Option<Vec<I>>
where
    I: Clone,
    O: PartialEq,
{
    for (i, (a, p)) in actual.iter().zip(predicted).enumerate() {
        if a != p {
            return Some(word[..=i].to_vec());
        }
    }
    None
}

/// Per-walker resume state for a run of conformance tests against one fixed
/// hypothesis.
///
/// Suite words arrive in `prefix · middle · suffix` product order, so
/// consecutive tests share long prefixes.  The cursor keeps the previous
/// word, the hypothesis states and predicted outputs along it, and the trie
/// path of its verified prefix — each new test then re-walks only the part
/// *after* the longest common prefix, in both the hypothesis and the cache.
///
/// Soundness of resuming: every retained prefix was checked to *agree* with
/// the hypothesis prediction (a disagreeing position would have produced a
/// counterexample and ended the walker's run), predictions on a shared
/// prefix are identical because the hypothesis is deterministic, and trie
/// nodes are append-only.  Cache hit/miss counting is per test, exactly as
/// before, so resuming never changes membership-query statistics.
struct TestCursor<I, O> {
    /// The previous test word.
    word: Vec<I>,
    /// `states[d]` is the hypothesis state after consuming `word[..d]`
    /// (`states[0]` is the initial state, so the vector is never empty).
    states: Vec<automata::StateId>,
    /// Predicted outputs for `word`.
    predicted: Vec<O>,
    /// Trie path of the verified-agreeing prefix of `word`.
    trie: TrieCursor,
}

impl<I, O> TestCursor<I, O> {
    fn new(initial: automata::StateId) -> Self {
        TestCursor {
            word: Vec::new(),
            states: vec![initial],
            predicted: Vec::new(),
            trie: TrieCursor::new(),
        }
    }
}

/// Length of the longest common prefix of two words.
fn common_prefix_len<I: Eq>(a: &[I], b: &[I]) -> usize {
    a.iter().zip(b).take_while(|(x, y)| x == y).count()
}

/// Executes one conformance test: decides it from the cache where possible
/// (without cloning outputs), otherwise queries the oracle and records the
/// answer.  Returns the shortest failing prefix, if any.
///
/// `cursor` carries the walker's resume state (see [`TestCursor`]); the
/// hypothesis prediction and the trie check both restart from the longest
/// prefix shared with the previous test word.
fn run_one_test<I, O>(
    cache: Option<&QueryCache<I, O>>,
    oracle: &mut dyn MembershipOracle<I, O>,
    hypothesis: &Mealy<I, O>,
    word: &[I],
    cursor: &mut TestCursor<I, O>,
) -> Result<Option<Vec<I>>, OracleError>
where
    I: Clone + Eq + Hash + fmt::Debug,
    O: Clone + Eq + fmt::Debug,
{
    let lcp = common_prefix_len(&cursor.word, word);
    cursor.states.truncate(lcp + 1);
    cursor.predicted.truncate(lcp);
    let mut state = *cursor
        .states
        .last()
        .expect("cursor keeps the initial state");
    for input in &word[lcp..] {
        let ii = hypothesis
            .input_position(input)
            .unwrap_or_else(|| panic!("input {input:?} is not in the alphabet"));
        let (next, output) = hypothesis.step_by_index(state, ii);
        cursor.predicted.push(output.clone());
        cursor.states.push(next);
        state = next;
    }
    cursor.word.clear();
    cursor.word.extend_from_slice(word);
    if let Some(cache) = cache {
        match cache.check_against_resumed(word, &cursor.predicted, lcp, &mut cursor.trie) {
            CacheVerdict::Match => return Ok(None),
            CacheVerdict::Mismatch(i) => return Ok(Some(word[..=i].to_vec())),
            CacheVerdict::Unknown => {}
        }
        let actual = query_validated(oracle, word)?;
        cache.record(word, &actual)?;
        return Ok(shortest_failing_prefix(word, &actual, &cursor.predicted));
    }
    let actual = query_validated(oracle, word)?;
    Ok(shortest_failing_prefix(word, &actual, &cursor.predicted))
}

impl<'f, I, O> QueryPool<'f, I, O>
where
    I: Clone + Eq + Hash + fmt::Debug,
    O: Clone + Eq + fmt::Debug,
{
    /// Creates a pool over `factory`.
    ///
    /// `workers == 0` resolves the worker count from [`WORKERS_ENV`] or the
    /// available parallelism; `memoize == false` disables the shared cache
    /// (used by the ablation benchmarks).
    pub fn new(factory: &'f dyn OracleFactory<I, O>, workers: usize, memoize: bool) -> Self {
        QueryPool {
            factory,
            cache: memoize.then(|| Arc::new(QueryCache::new())),
            local: factory.make_oracle(),
            workers: Vec::new(),
            worker_target: resolve_workers(workers).max(1),
            uncached_queries: 0,
            tests_run: 0,
            shards_run: 0,
        }
    }

    /// The resolved number of worker threads parallel stages may use.
    pub fn workers(&self) -> usize {
        self.worker_target
    }

    /// The shared prefix-trie cache, if memoization is enabled.
    pub fn cache(&self) -> Option<&Arc<QueryCache<I, O>>> {
        self.cache.as_ref()
    }

    /// Membership queries answered so far (cache hits included).
    pub fn queries_answered(&self) -> u64 {
        match &self.cache {
            Some(cache) => cache.total_lookups(),
            None => self.uncached_queries,
        }
    }

    /// Cache hits so far (0 when memoization is disabled).
    pub fn cache_hits(&self) -> u64 {
        self.cache.as_ref().map_or(0, |c| c.hits())
    }

    /// Cache misses so far; equals [`Self::queries_answered`] when
    /// memoization is disabled.
    pub fn cache_misses(&self) -> u64 {
        match &self.cache {
            Some(cache) => cache.misses(),
            None => self.uncached_queries,
        }
    }

    /// Conformance tests executed so far across all [`Self::run_tests`]
    /// calls.
    pub fn tests_run(&self) -> u64 {
        self.tests_run
    }

    /// Total number of worker shards used across all [`Self::run_tests`]
    /// calls.
    pub fn shards_run(&self) -> u64 {
        self.shards_run
    }

    /// Answers a single membership query through the cache and the local
    /// oracle.
    ///
    /// # Errors
    ///
    /// Propagates oracle failures and cache-consistency violations.
    pub fn query_word(&mut self, word: &[I]) -> Result<Vec<O>, OracleError> {
        if self.cache.is_none() {
            self.uncached_queries += 1;
        }
        query_via(self.cache.as_deref(), &mut self.local, word)
    }

    /// Lazily creates the per-worker oracles.
    fn ensure_workers(&mut self) {
        while self.workers.len() < self.worker_target {
            self.workers.push(self.factory.make_oracle());
        }
    }
}

impl<I, O> QueryPool<'_, I, O>
where
    I: Clone + Eq + Hash + fmt::Debug + Send + Sync,
    O: Clone + Eq + fmt::Debug + Send + Sync,
{
    /// Answers a batch of membership queries, sharding cache misses across
    /// the worker pool.  Results are returned in input order.
    ///
    /// This is the batched table-filling primitive of L*: the observation
    /// table collects every missing cell of a refinement step and issues them
    /// as one batch instead of one oracle round-trip per cell.
    ///
    /// # Errors
    ///
    /// Propagates the first oracle failure of any worker.
    pub fn query_batch(&mut self, words: &[Vec<I>]) -> Result<Vec<Vec<O>>, OracleError> {
        let mut results: Vec<Option<Vec<O>>> = match &self.cache {
            Some(cache) => words.iter().map(|w| cache.lookup(w)).collect(),
            None => {
                self.uncached_queries += words.len() as u64;
                vec![None; words.len()]
            }
        };
        // Deduplicate outstanding words before touching any oracle: the same
        // word can appear under several batch indices (e.g. two observation
        // table cells with `p1·e1 == p2·e2`), and each oracle execution can
        // be an expensive hardware probe.  `missing` keeps one representative
        // index per distinct word; `duplicates` maps the rest back to it.
        let mut representative: automata::fxhash::FxHashMap<&[I], usize> =
            automata::fxhash::FxHashMap::default();
        let mut missing: Vec<usize> = Vec::new();
        let mut duplicates: Vec<(usize, usize)> = Vec::new(); // (index, representative)
        for index in 0..words.len() {
            if results[index].is_some() {
                continue;
            }
            match representative.entry(words[index].as_slice()) {
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(index);
                    missing.push(index);
                }
                std::collections::hash_map::Entry::Occupied(slot) => {
                    duplicates.push((index, *slot.get()));
                }
            }
        }

        if self.worker_target <= 1 || missing.len() < MIN_PARALLEL_ITEMS {
            for index in missing {
                // Cache lookups already counted this batch; query the oracle
                // directly and record, skipping the double-counting lookup.
                let outputs = query_validated(&mut self.local, &words[index])?;
                if let Some(cache) = &self.cache {
                    cache.record(&words[index], &outputs)?;
                }
                results[index] = Some(outputs);
            }
        } else {
            self.ensure_workers();
            let shards = self.worker_target.min(missing.len());
            let cache = self.cache.clone();
            // Per-worker result: the (input index, outputs) pairs it answered.
            type ShardAnswers<O> = Result<Vec<(usize, Vec<O>)>, OracleError>;
            let mut answered: Vec<ShardAnswers<O>> = std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .workers
                    .iter_mut()
                    .take(shards)
                    .enumerate()
                    .map(|(worker, oracle)| {
                        let shard: Vec<usize> = missing
                            .iter()
                            .copied()
                            .skip(worker)
                            .step_by(shards)
                            .collect();
                        let cache = cache.clone();
                        let words = &words;
                        scope.spawn(move || {
                            let mut out = Vec::with_capacity(shard.len());
                            for index in shard {
                                let outputs = query_validated(oracle, &words[index])?;
                                if let Some(cache) = &cache {
                                    cache.record(&words[index], &outputs)?;
                                }
                                out.push((index, outputs));
                            }
                            Ok(out)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("query worker panicked"))
                    .collect()
            });
            for shard_result in answered.drain(..) {
                for (index, outputs) in shard_result? {
                    results[index] = Some(outputs);
                }
            }
        }
        for (index, source) in duplicates {
            results[index] = results[source].clone();
        }
        Ok(results
            .into_iter()
            .map(|r| r.expect("all batch entries answered"))
            .collect())
    }

    /// Runs a conformance test suite against `hypothesis`, sharding it across
    /// the worker pool, and returns the outcome.
    ///
    /// The suite is consumed lazily in geometrically growing chunks, so a
    /// hypothesis refuted by an early test never materializes the
    /// (exponentially large) tail of the suite — pair this with
    /// [`wp_method_suite_iter`](crate::wp_method_suite_iter).  Fully cached
    /// tests are decided by walking the prefix trie against the hypothesis
    /// prediction without cloning outputs or touching the oracle (and a
    /// cached *prefix* that already diverges refutes a test all by itself).
    ///
    /// Workers short-circuit through a shared atomic best-index: as soon as a
    /// failing test is found, every worker abandons test words with a larger
    /// suite index.  All indices *smaller* than the best failure are still
    /// executed, so the returned counterexample is exactly the one the
    /// sequential path would find — parallelism changes how many tests are
    /// *executed*, never which counterexample is *returned*.
    ///
    /// # Errors
    ///
    /// Propagates the first oracle failure of any worker.
    pub fn run_tests(
        &mut self,
        hypothesis: &Mealy<I, O>,
        suite: impl IntoIterator<Item = Vec<I>>,
    ) -> Result<SuiteOutcome<I>, OracleError> {
        let mut suite = suite.into_iter();
        let mut chunk_size = FIRST_CHUNK;
        let mut executed = 0u64;
        let mut shards = 0u64;
        let mut counterexample = None;
        // The sequential walker's resume state survives chunk boundaries —
        // the suite order (and hence the prefix sharing) is continuous.
        let mut cursor = TestCursor::new(hypothesis.initial());
        loop {
            let chunk: Vec<Vec<I>> = suite.by_ref().take(chunk_size).collect();
            if chunk.is_empty() {
                break;
            }
            let outcome = if self.worker_target <= 1 || chunk.len() < MIN_PARALLEL_ITEMS {
                self.run_chunk_sequential(hypothesis, &chunk, &mut cursor)?
            } else {
                self.run_chunk_parallel(hypothesis, &chunk)?
            };
            executed += outcome.tests_executed;
            shards += outcome.shards;
            if outcome.counterexample.is_some() {
                counterexample = outcome.counterexample;
                break;
            }
            chunk_size = (chunk_size * CHUNK_GROWTH).min(MAX_CHUNK);
        }
        if self.cache.is_none() {
            self.uncached_queries += executed;
        }
        self.tests_run += executed;
        self.shards_run += shards;
        Ok(SuiteOutcome {
            counterexample,
            tests_executed: executed,
            shards,
        })
    }

    fn run_chunk_sequential(
        &mut self,
        hypothesis: &Mealy<I, O>,
        chunk: &[Vec<I>],
        cursor: &mut TestCursor<I, O>,
    ) -> Result<SuiteOutcome<I>, OracleError> {
        let mut executed = 0;
        for word in chunk {
            executed += 1;
            // Query counting happens in `run_tests` from `tests_executed`.
            if let Some(cex) = run_one_test(
                self.cache.as_deref(),
                &mut self.local,
                hypothesis,
                word,
                cursor,
            )? {
                return Ok(SuiteOutcome {
                    counterexample: Some(cex),
                    tests_executed: executed,
                    shards: 1,
                });
            }
        }
        Ok(SuiteOutcome {
            counterexample: None,
            tests_executed: executed,
            shards: 1,
        })
    }

    fn run_chunk_parallel(
        &mut self,
        hypothesis: &Mealy<I, O>,
        chunk: &[Vec<I>],
    ) -> Result<SuiteOutcome<I>, OracleError> {
        self.ensure_workers();
        let shards = self.worker_target.min(chunk.len());
        let cache = self.cache.clone();
        // Index of the best (smallest) failing test found so far; workers
        // stop once their next index cannot beat it.
        let best = AtomicUsize::new(usize::MAX);
        let abort = AtomicBool::new(false);
        let found: Mutex<Option<(usize, Vec<I>)>> = Mutex::new(None);

        let worker_results: Vec<Result<u64, OracleError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .workers
                .iter_mut()
                .take(shards)
                .enumerate()
                .map(|(worker, oracle)| {
                    let cache = cache.clone();
                    let (best, abort, found) = (&best, &abort, &found);
                    scope.spawn(move || {
                        let mut executed = 0u64;
                        // Strided shards still share prefixes between their
                        // consecutive words (the suite's prefix blocks are
                        // much longer than the stride), so each worker gets
                        // its own resume cursor.
                        let mut cursor = TestCursor::new(hypothesis.initial());
                        for index in (worker..chunk.len()).step_by(shards) {
                            if abort.load(Ordering::Relaxed)
                                || index >= best.load(Ordering::Relaxed)
                            {
                                break;
                            }
                            let word = &chunk[index];
                            executed += 1;
                            match run_one_test(
                                cache.as_deref(),
                                oracle,
                                hypothesis,
                                word,
                                &mut cursor,
                            ) {
                                Ok(None) => {}
                                Ok(Some(cex)) => {
                                    best.fetch_min(index, Ordering::Relaxed);
                                    let mut slot = found.lock().expect("result lock poisoned");
                                    if slot.as_ref().is_none_or(|(i, _)| *i > index) {
                                        *slot = Some((index, cex));
                                    }
                                }
                                Err(e) => {
                                    abort.store(true, Ordering::Relaxed);
                                    return Err(e);
                                }
                            }
                        }
                        Ok(executed)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("conformance worker panicked"))
                .collect()
        });

        let mut executed = 0;
        for result in worker_results {
            executed += result?;
        }
        let counterexample = found
            .into_inner()
            .expect("result lock poisoned")
            .map(|(_, cex)| cex);
        Ok(SuiteOutcome {
            counterexample,
            tests_executed: executed,
            shards: shards as u64,
        })
    }
}

impl<I, O> MembershipOracle<I, O> for QueryPool<'_, I, O>
where
    I: Clone + Eq + Hash + fmt::Debug,
    O: Clone + Eq + fmt::Debug,
{
    fn query(&mut self, word: &[I]) -> Result<Vec<O>, OracleError> {
        self.query_word(word)
    }

    fn queries_answered(&self) -> u64 {
        QueryPool::queries_answered(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::MealyOracle;
    use automata::MealyBuilder;

    /// A counter modulo `n` over inputs `t` (tick) and `r` (reset).
    fn counter(n: usize) -> Mealy<&'static str, bool> {
        let mut b = MealyBuilder::new(vec!["t", "r"]);
        let states: Vec<_> = (0..n).map(|_| b.add_state()).collect();
        for i in 0..n {
            b.add_transition(states[i], "t", states[(i + 1) % n], i + 1 == n);
            b.add_transition(states[i], "r", states[0], false);
        }
        b.build(states[0]).unwrap()
    }

    #[test]
    fn pool_memoizes_repeated_queries() {
        let target = counter(3);
        let factory = move || MealyOracle::new(target.clone());
        let mut pool = QueryPool::new(&factory, 1, true);
        let first = pool.query_word(&["t", "t", "t"]).unwrap();
        let second = pool.query_word(&["t", "t", "t"]).unwrap();
        assert_eq!(first, second);
        assert_eq!(pool.cache_hits(), 1);
        assert_eq!(pool.queries_answered(), 2);
    }

    #[test]
    fn disabled_memoization_still_counts_queries() {
        let target = counter(3);
        let factory = move || MealyOracle::new(target.clone());
        let mut pool = QueryPool::new(&factory, 1, false);
        pool.query_word(&["t"]).unwrap();
        pool.query_word(&["t"]).unwrap();
        assert_eq!(pool.cache_hits(), 0);
        assert_eq!(pool.queries_answered(), 2);
    }

    #[test]
    fn batches_answer_in_input_order() {
        let target = counter(4);
        let reference = target.clone();
        let factory = move || MealyOracle::new(target.clone());
        for workers in [1, 4] {
            let mut pool = QueryPool::new(&factory, workers, true);
            let words: Vec<Vec<&str>> = (1..=40)
                .map(|len| {
                    (0..len)
                        .map(|i| if i % 5 == 0 { "r" } else { "t" })
                        .collect()
                })
                .collect();
            let answers = pool.query_batch(&words).unwrap();
            for (word, answer) in words.iter().zip(&answers) {
                assert_eq!(*answer, reference.output_word(word.iter()));
            }
        }
    }

    #[test]
    fn batches_answer_duplicate_words_with_one_oracle_query() {
        let target = counter(3);
        let factory = move || MealyOracle::new(target.clone());
        // Memoization off, so any duplicate suppression must come from the
        // batch itself, not the trie.
        let mut pool = QueryPool::new(&factory, 1, false);
        let words: Vec<Vec<&str>> = vec![
            vec!["t", "t"],
            vec!["t", "r"],
            vec!["t", "t"],
            vec!["t", "t"],
        ];
        let answers = pool.query_batch(&words).unwrap();
        assert_eq!(answers[0], answers[2]);
        assert_eq!(answers[0], answers[3]);
        // Two distinct words → exactly two queries reached the oracle.
        assert_eq!(pool.local.queries_answered(), 2);
    }

    #[test]
    fn run_tests_returns_the_first_counterexample_of_the_suite() {
        let system = counter(3);
        let hypothesis = counter(2);
        let factory = move || MealyOracle::new(system.clone());
        // The suite contains two failing words; the smaller index must win on
        // both the sequential and the parallel path.
        let mut suite: Vec<Vec<&str>> = (0..40).map(|_| vec!["t", "r"]).collect();
        suite[7] = vec!["t", "t", "t"];
        suite[23] = vec!["r", "t", "t", "t"];
        let mut expected = None;
        for workers in [1, 4] {
            let mut pool = QueryPool::new(&factory, workers, true);
            let outcome = pool.run_tests(&hypothesis, suite.iter().cloned()).unwrap();
            let cex = outcome.counterexample.expect("a counterexample exists");
            // The index-7 word diverges at its second symbol (the 2-counter
            // wraps, the 3-counter does not), so the shortest failing prefix
            // of the smallest failing suite index is returned.
            assert_eq!(cex, vec!["t", "t"]);
            match &expected {
                None => expected = Some(cex),
                Some(prev) => assert_eq!(prev, &cex),
            }
        }
    }

    #[test]
    fn run_tests_passes_equivalent_machines() {
        let system = counter(3);
        let hypothesis = system.clone();
        let factory = move || MealyOracle::new(system.clone());
        let mut pool = QueryPool::new(&factory, 4, true);
        let suite: Vec<Vec<&str>> = (1..=64)
            .map(|len| {
                (0..len)
                    .map(|i| if i % 3 == 0 { "r" } else { "t" })
                    .collect()
            })
            .collect();
        let outcome = pool.run_tests(&hypothesis, suite.iter().cloned()).unwrap();
        assert_eq!(outcome.counterexample, None);
        assert_eq!(outcome.tests_executed, 64);
        assert!(outcome.shards >= 1);
        assert_eq!(pool.tests_run(), 64);
    }

    #[test]
    fn worker_errors_propagate() {
        /// An oracle that fails on words longer than 2 symbols.
        struct Flaky;
        impl MembershipOracle<&'static str, bool> for Flaky {
            fn query(&mut self, word: &[&'static str]) -> Result<Vec<bool>, OracleError> {
                if word.len() > 2 {
                    Err(OracleError::new("hardware glitch"))
                } else {
                    Ok(vec![false; word.len()])
                }
            }
            fn queries_answered(&self) -> u64 {
                0
            }
        }
        let factory = || Flaky;
        let hypothesis = counter(2);
        let suite: Vec<Vec<&str>> = (0..64).map(|_| vec!["t", "t", "t"]).collect();
        let mut pool = QueryPool::new(&factory, 4, false);
        assert!(pool.run_tests(&hypothesis, suite.iter().cloned()).is_err());
    }

    #[test]
    fn explicit_worker_counts_override_the_default() {
        let target = counter(2);
        let factory = move || MealyOracle::new(target.clone());
        let pool = QueryPool::new(&factory, 3, true);
        assert_eq!(pool.workers(), 3);
    }
}
