//! The observation table of L* for Mealy machines.

use std::fmt;
use std::hash::Hash;

use automata::fxhash::{FxHashMap, FxHashSet};
use automata::{Mealy, MealyBuilder, StateId};

use crate::oracle::OracleError;
use crate::pool::QueryPool;

/// The observation table: prefixes (short rows `S` and their one-letter
/// extensions) × distinguishing suffixes `E`, filled with the output words the
/// system produces for the suffix after the prefix.
#[derive(Debug)]
pub struct ObservationTable<I, O> {
    inputs: Vec<I>,
    /// Short prefixes (access-string candidates).  Prefix-closed, `S[0] = ε`.
    short: Vec<Vec<I>>,
    /// Distinguishing suffixes (all non-empty).
    suffixes: Vec<Vec<I>>,
    /// Table contents: prefix → per-suffix output words.
    rows: FxHashMap<Vec<I>, Vec<Vec<O>>>,
}

impl<I, O> ObservationTable<I, O>
where
    I: Clone + Eq + Hash + fmt::Debug + Send + Sync,
    O: Clone + Eq + Hash + fmt::Debug + Send + Sync,
{
    /// Creates a table over `inputs` with `S = {ε}` and one suffix per input
    /// symbol (the canonical initialization for Mealy machines, which makes
    /// output functions observable from the start).
    pub fn new(inputs: Vec<I>) -> Self {
        let suffixes = inputs.iter().map(|i| vec![i.clone()]).collect();
        ObservationTable {
            inputs,
            short: vec![Vec::new()],
            suffixes,
            rows: FxHashMap::default(),
        }
    }

    /// The short prefixes currently in the table.
    pub fn short_prefixes(&self) -> &[Vec<I>] {
        &self.short
    }

    /// The distinguishing suffixes currently in the table.
    pub fn suffixes(&self) -> &[Vec<I>] {
        &self.suffixes
    }

    /// Fills any missing cells by querying the pool.
    ///
    /// All missing cells of a refinement step are gathered first and issued
    /// as one [`QueryPool::query_batch`], so the cells are answered from the
    /// shared prefix-trie cache where possible and sharded across the worker
    /// pool where not.
    ///
    /// # Errors
    ///
    /// Propagates oracle errors.
    pub fn fill(&mut self, pool: &mut QueryPool<'_, I, O>) -> Result<(), OracleError> {
        // Gather the missing cells: for every row prefix, the words
        // `prefix · suffix` for each not-yet-filled suffix column.
        let mut row_prefixes: Vec<Vec<I>> = Vec::new();
        for s in &self.short {
            row_prefixes.push(s.clone());
            for a in &self.inputs {
                let mut extended = s.clone();
                extended.push(a.clone());
                row_prefixes.push(extended);
            }
        }
        let mut pending: Vec<(Vec<I>, usize)> = Vec::new(); // (prefix, first missing column)
        let mut queued: FxHashSet<Vec<I>> = FxHashSet::default();
        let mut words: Vec<Vec<I>> = Vec::new();
        for prefix in row_prefixes {
            let filled = self.rows.get(&prefix).map(|r| r.len()).unwrap_or(0);
            if filled == self.suffixes.len() || !queued.insert(prefix.clone()) {
                continue;
            }
            for suffix in &self.suffixes[filled..] {
                let mut word = prefix.clone();
                word.extend(suffix.iter().cloned());
                words.push(word);
            }
            pending.push((prefix, filled));
        }
        if words.is_empty() {
            return Ok(());
        }

        let answers = pool.query_batch(&words)?;
        let mut cursor = 0usize;
        for (prefix, filled) in pending {
            let mut row = self.rows.remove(&prefix).unwrap_or_default();
            debug_assert_eq!(row.len(), filled);
            for _ in filled..self.suffixes.len() {
                let (word, outputs) = (&words[cursor], &answers[cursor]);
                cursor += 1;
                debug_assert!(word.starts_with(&prefix));
                if outputs.len() != word.len() {
                    return Err(OracleError::new(format!(
                        "oracle returned {} outputs for a word of length {}",
                        outputs.len(),
                        word.len()
                    )));
                }
                row.push(outputs[prefix.len()..].to_vec());
            }
            self.rows.insert(prefix, row);
        }
        debug_assert_eq!(cursor, words.len());
        Ok(())
    }

    /// The row signature of a prefix (its per-suffix output words).
    ///
    /// # Panics
    ///
    /// Panics if the row has not been filled.
    pub fn row(&self, prefix: &[I]) -> &[Vec<O>] {
        self.rows
            .get(prefix)
            .unwrap_or_else(|| panic!("row for prefix {prefix:?} has not been filled"))
    }

    /// Returns an unclosedness witness: a one-letter extension of a short
    /// prefix whose row matches no short row, if any.
    pub fn find_unclosed(&self) -> Option<Vec<I>> {
        let short_rows: FxHashSet<&[Vec<O>]> = self.short.iter().map(|s| self.row(s)).collect();
        for s in &self.short {
            for a in &self.inputs {
                let mut extended = s.clone();
                extended.push(a.clone());
                let row = self.row(&extended);
                if !short_rows.contains(row) {
                    return Some(extended);
                }
            }
        }
        None
    }

    /// Promotes a prefix to the short rows (used when closing the table).
    pub fn promote(&mut self, prefix: Vec<I>) {
        if !self.short.contains(&prefix) {
            self.short.push(prefix);
        }
    }

    /// Adds a distinguishing suffix.  Returns `false` if it was already
    /// present.
    pub fn add_suffix(&mut self, suffix: Vec<I>) -> bool {
        if suffix.is_empty() || self.suffixes.contains(&suffix) {
            return false;
        }
        self.suffixes.push(suffix);
        true
    }

    /// Builds the hypothesis machine from a closed table and returns it
    /// together with the access string of each state.
    ///
    /// # Panics
    ///
    /// Panics if the table is not closed or not filled.
    pub fn hypothesis(&self) -> (Mealy<I, O>, Vec<Vec<I>>) {
        // Assign a state to each distinct short row, keeping the first
        // occurrence as the access string.
        let mut state_of_row: FxHashMap<Vec<Vec<O>>, StateId> = FxHashMap::default();
        let mut access: Vec<Vec<I>> = Vec::new();
        for s in &self.short {
            let row = self.row(s).to_vec();
            if let std::collections::hash_map::Entry::Vacant(e) = state_of_row.entry(row) {
                let id = StateId::new(access.len());
                e.insert(id);
                access.push(s.clone());
            }
        }

        let mut builder = MealyBuilder::new(self.inputs.clone());
        for _ in 0..access.len() {
            builder.add_state();
        }
        for (state_index, s) in access.iter().enumerate() {
            for (input_index, a) in self.inputs.iter().enumerate() {
                let mut extended = s.clone();
                extended.push(a.clone());
                let successor_row = self.row(&extended).to_vec();
                let successor = *state_of_row
                    .get(&successor_row)
                    .expect("table must be closed before building a hypothesis");
                // The output of `a` from this state is the first symbol of the
                // cell for the single-symbol suffix `a` (suffix i is the i-th
                // input by construction of `new`; later suffixes do not change
                // this because suffix 0..|inputs| are the single symbols).
                let output = self.row(s)[input_index][0].clone();
                builder.add_transition(StateId::new(state_index), a.clone(), successor, output);
            }
        }
        let machine = builder
            .build(StateId::new(0))
            .expect("closed and filled tables produce complete machines");
        (machine, access)
    }

    /// Total number of cells currently stored (diagnostics).
    #[allow(dead_code)]
    pub fn cells(&self) -> usize {
        self.rows.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::MealyOracle;
    use automata::MealyBuilder;

    fn target() -> Mealy<&'static str, u8> {
        // A 3-state cyclic machine: "a" advances and outputs the new index,
        // "b" stays and outputs 9.
        let mut b = MealyBuilder::new(vec!["a", "b"]);
        let s: Vec<_> = (0..3).map(|_| b.add_state()).collect();
        for i in 0..3 {
            b.add_transition(s[i], "a", s[(i + 1) % 3], ((i + 1) % 3) as u8);
            b.add_transition(s[i], "b", s[i], 9);
        }
        b.build(s[0]).unwrap()
    }

    #[test]
    fn initial_table_has_one_suffix_per_input() {
        let table: ObservationTable<&str, u8> = ObservationTable::new(vec!["a", "b"]);
        assert_eq!(table.suffixes().len(), 2);
        assert_eq!(table.short_prefixes().len(), 1);
    }

    #[test]
    fn closing_the_table_discovers_all_states() {
        let machine = target();
        let factory = move || MealyOracle::new(machine.clone());
        let mut pool = QueryPool::new(&factory, 1, true);
        let mut table = ObservationTable::new(vec!["a", "b"]);
        table.fill(&mut pool).unwrap();
        // Close the table by promoting unclosed rows until stable.
        while let Some(witness) = table.find_unclosed() {
            table.promote(witness);
            table.fill(&mut pool).unwrap();
        }
        let (hypothesis, access) = table.hypothesis();
        assert_eq!(hypothesis.num_states(), 3);
        assert_eq!(access.len(), 3);
        assert!(automata::equivalent(&hypothesis, &target()));
    }

    #[test]
    fn add_suffix_ignores_duplicates_and_empty() {
        let mut table: ObservationTable<&str, u8> = ObservationTable::new(vec!["a"]);
        assert!(!table.add_suffix(vec![]));
        assert!(!table.add_suffix(vec!["a"]));
        assert!(table.add_suffix(vec!["a", "a"]));
        assert!(!table.add_suffix(vec!["a", "a"]));
    }

    #[test]
    fn rows_store_suffix_outputs_only() {
        let machine = target();
        let factory = move || MealyOracle::new(machine.clone());
        let mut pool = QueryPool::new(&factory, 1, true);
        let mut table = ObservationTable::new(vec!["a", "b"]);
        table.fill(&mut pool).unwrap();
        // Row of prefix "a" for suffix "a": output of the second "a" only.
        let row = table.row(&["a"]);
        assert_eq!(row[0], vec![2]);
        assert_eq!(row[1], vec![9]);
    }
}
