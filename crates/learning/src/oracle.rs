//! Teacher-side oracle interfaces and generic oracle adapters.

use std::fmt;
use std::hash::Hash;
use std::sync::Arc;

use automata::Mealy;

use crate::cache::QueryCache;
use crate::pool::QueryPool;

/// Statistical evidence that the system under learning is not a
/// deterministic machine.
///
/// Produced by oracles that execute every query several times and vote
/// (the engine's 500‰ majority-margin rule): when repeated executions of the
/// same query keep disagreeing, the problem is not noise to be voted away
/// but genuine non-determinism — on hardware, typically an adaptive follower
/// set or a wrong reset sequence.  All rates are permille integers so the
/// evidence survives wire protocols without float round-tripping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NonDeterminism {
    /// Queries whose repeated executions never settled into a majority,
    /// per-mille of all voted queries (the disagreement rate).
    pub disagreement_permille: u64,
    /// The vote margin (per-mille) of the worst query observed — how far the
    /// closest vote was from unanimity (1000‰ = all repetitions agreed).
    pub worst_margin_permille: u64,
    /// Rendered text of the worst (lowest-margin) query.
    pub worst_query: String,
    /// The margin threshold (per-mille) a majority had to clear to settle.
    pub required_margin_permille: u64,
    /// Queries that were voted on in total.
    pub voted_queries: u64,
    /// Queries that never settled.
    pub unsettled_queries: u64,
}

impl fmt::Display for NonDeterminism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} voted queries never settled ({}‰ disagreement; worst query '{}' at {}‰ \
             margin, {}‰ required)",
            self.unsettled_queries,
            self.voted_queries,
            self.disagreement_permille,
            self.worst_query,
            self.worst_margin_permille,
            self.required_margin_permille,
        )
    }
}

/// Error raised by an oracle (e.g. a hardware backend failure or detected
/// nondeterminism in the system under learning).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleError {
    /// Human-readable description.
    pub message: String,
    /// Statistical evidence attached when the failure is detected
    /// non-determinism rather than a plain backend fault.
    pub non_determinism: Option<NonDeterminism>,
}

impl OracleError {
    /// Creates an error from any displayable message.
    pub fn new(message: impl Into<String>) -> Self {
        OracleError {
            message: message.into(),
            non_determinism: None,
        }
    }

    /// Creates an error carrying statistical non-determinism evidence.
    pub fn not_deterministic(message: impl Into<String>, evidence: NonDeterminism) -> Self {
        OracleError {
            message: message.into(),
            non_determinism: Some(evidence),
        }
    }
}

impl fmt::Display for OracleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "oracle error: {}", self.message)
    }
}

impl std::error::Error for OracleError {}

/// A membership oracle: answers output words for input words (§3.1, query
/// type 1).
pub trait MembershipOracle<I, O> {
    /// The output word produced by the system under learning on `word` (one
    /// output per input symbol).
    ///
    /// # Errors
    ///
    /// Implementations return an [`OracleError`] when the underlying system
    /// fails or behaves non-deterministically.
    fn query(&mut self, word: &[I]) -> Result<Vec<O>, OracleError>;

    /// Convenience: the output of the last symbol of `word`.
    ///
    /// # Errors
    ///
    /// Propagates [`MembershipOracle::query`] errors; also fails on the empty
    /// word.
    fn last_output(&mut self, word: &[I]) -> Result<O, OracleError> {
        self.query(word)?
            .pop()
            .ok_or_else(|| OracleError::new("last_output called on the empty word"))
    }

    /// Number of queries answered so far.
    ///
    /// This method is deliberately *required*: a default of `0` would let an
    /// implementation silently under-report and corrupt the statistics of a
    /// learning run.  Oracles that genuinely do not count should return the
    /// count of a wrapper such as [`CachedOracle`] or
    /// [`QueryPool`](crate::QueryPool), which track queries centrally.
    fn queries_answered(&self) -> u64;
}

/// Boxed oracles answer queries by delegation, so worker pools can own
/// `Box<dyn MembershipOracle + Send>` trade objects.
impl<I, O, M> MembershipOracle<I, O> for Box<M>
where
    M: MembershipOracle<I, O> + ?Sized,
{
    fn query(&mut self, word: &[I]) -> Result<Vec<O>, OracleError> {
        (**self).query(word)
    }

    fn queries_answered(&self) -> u64 {
        (**self).queries_answered()
    }
}

/// An equivalence oracle: searches for a counterexample distinguishing the
/// hypothesis from the system under learning (§3.1, query type 2).
///
/// Equivalence oracles receive the learner's [`QueryPool`] rather than a bare
/// membership oracle: the pool answers individual queries through the shared
/// prefix-trie cache and can execute whole conformance suites sharded across
/// its worker threads (see [`QueryPool::run_tests`]).
pub trait EquivalenceOracle<I, O> {
    /// Returns a counterexample input word on which the system and the
    /// hypothesis disagree, or `None` if none was found.
    ///
    /// # Errors
    ///
    /// Propagates membership-oracle errors.
    fn find_counterexample(
        &mut self,
        pool: &mut QueryPool<'_, I, O>,
        hypothesis: &Mealy<I, O>,
    ) -> Result<Option<Vec<I>>, OracleError>;
}

/// A membership oracle backed by a known Mealy machine; the "software
/// simulator" teacher used in tests and ablations.
#[derive(Debug, Clone)]
pub struct MealyOracle<I, O> {
    machine: Mealy<I, O>,
    queries: u64,
    symbols: u64,
}

impl<I, O> MealyOracle<I, O>
where
    I: Clone + Eq + Hash + fmt::Debug,
    O: Clone + Eq + fmt::Debug,
{
    /// Wraps a machine as a teacher.
    pub fn new(machine: Mealy<I, O>) -> Self {
        MealyOracle {
            machine,
            queries: 0,
            symbols: 0,
        }
    }

    /// Total number of input symbols processed.
    pub fn symbols_processed(&self) -> u64 {
        self.symbols
    }
}

impl<I, O> MembershipOracle<I, O> for MealyOracle<I, O>
where
    I: Clone + Eq + Hash + fmt::Debug,
    O: Clone + Eq + fmt::Debug,
{
    fn query(&mut self, word: &[I]) -> Result<Vec<O>, OracleError> {
        self.queries += 1;
        self.symbols += word.len() as u64;
        Ok(self.machine.output_word(word.iter()))
    }

    fn queries_answered(&self) -> u64 {
        self.queries
    }
}

/// A prefix-trie cache in front of another membership oracle, mirroring
/// LearnLib's query cache (and, at the other end of the pipeline, the role of
/// the LevelDB cache in CacheQuery's frontend).
///
/// The cache itself is a shared, thread-safe [`QueryCache`]: several
/// `CachedOracle`s (e.g. the per-worker oracles of a
/// [`QueryPool`](crate::QueryPool)) can be constructed over one cache with
/// [`CachedOracle::with_cache`], in which case hits produced by one worker
/// are visible to all others and the hit/miss statistics are global.
#[derive(Debug)]
pub struct CachedOracle<I, O, M> {
    inner: M,
    cache: Arc<QueryCache<I, O>>,
}

impl<I, O, M> CachedOracle<I, O, M>
where
    I: Clone + Eq + Hash,
    O: Clone + PartialEq,
    M: MembershipOracle<I, O>,
{
    /// Wraps `inner` with a fresh private cache.
    pub fn new(inner: M) -> Self {
        Self::with_cache(inner, Arc::new(QueryCache::new()))
    }

    /// Wraps `inner` with a shared cache (e.g. one trie serving a whole
    /// worker pool).
    pub fn with_cache(inner: M, cache: Arc<QueryCache<I, O>>) -> Self {
        CachedOracle { inner, cache }
    }

    /// Cache hits so far (global across every oracle sharing the cache).
    pub fn cache_hits(&self) -> u64 {
        self.cache.hits()
    }

    /// Cache misses (i.e. queries forwarded to an inner oracle).
    pub fn cache_misses(&self) -> u64 {
        self.cache.misses()
    }

    /// The shared cache behind this oracle.
    pub fn cache(&self) -> &Arc<QueryCache<I, O>> {
        &self.cache
    }

    /// The wrapped oracle.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// Consumes the adapter and returns the wrapped oracle.
    pub fn into_inner(self) -> M {
        self.inner
    }
}

impl<I, O, M> MembershipOracle<I, O> for CachedOracle<I, O, M>
where
    I: Clone + Eq + Hash,
    O: Clone + PartialEq,
    M: MembershipOracle<I, O>,
{
    fn query(&mut self, word: &[I]) -> Result<Vec<O>, OracleError> {
        if let Some(outputs) = self.cache.lookup(word) {
            return Ok(outputs);
        }
        let outputs = self.inner.query(word)?;
        self.cache.record(word, &outputs)?;
        Ok(outputs)
    }

    fn queries_answered(&self) -> u64 {
        self.cache.total_lookups()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use automata::MealyBuilder;

    fn toggle_machine() -> Mealy<&'static str, bool> {
        let mut b = MealyBuilder::new(vec!["a", "b"]);
        let s0 = b.add_state();
        let s1 = b.add_state();
        b.add_transition(s0, "a", s1, true);
        b.add_transition(s0, "b", s0, false);
        b.add_transition(s1, "a", s0, false);
        b.add_transition(s1, "b", s1, true);
        b.build(s0).unwrap()
    }

    #[test]
    fn mealy_oracle_answers_output_words() {
        let mut oracle = MealyOracle::new(toggle_machine());
        assert_eq!(
            oracle.query(&["a", "a", "b"]).unwrap(),
            vec![true, false, false]
        );
        assert!(oracle.last_output(&["a", "b"]).unwrap());
        assert_eq!(oracle.queries_answered(), 2);
        assert_eq!(oracle.symbols_processed(), 5);
    }

    #[test]
    fn last_output_of_empty_word_fails() {
        let mut oracle = MealyOracle::new(toggle_machine());
        assert!(oracle.last_output(&[]).is_err());
    }

    #[test]
    fn cached_oracle_reuses_prefixes() {
        let mut oracle = CachedOracle::new(MealyOracle::new(toggle_machine()));
        oracle.query(&["a", "b", "a"]).unwrap();
        assert_eq!(oracle.cache_misses(), 1);
        // An exact repeat and a prefix are both served from the cache.
        oracle.query(&["a", "b", "a"]).unwrap();
        oracle.query(&["a", "b"]).unwrap();
        assert_eq!(oracle.cache_hits(), 2);
        assert_eq!(oracle.inner().queries_answered(), 1);
    }

    #[test]
    fn cached_oracle_answers_match_the_inner_oracle() {
        let mut cached = CachedOracle::new(MealyOracle::new(toggle_machine()));
        let mut plain = MealyOracle::new(toggle_machine());
        for word in [vec!["a"], vec!["b", "b"], vec!["a", "b", "a", "a"]] {
            assert_eq!(cached.query(&word).unwrap(), plain.query(&word).unwrap());
        }
    }

    #[test]
    fn cached_oracles_share_one_trie() {
        let cache = Arc::new(QueryCache::new());
        let mut first =
            CachedOracle::with_cache(MealyOracle::new(toggle_machine()), Arc::clone(&cache));
        let mut second =
            CachedOracle::with_cache(MealyOracle::new(toggle_machine()), Arc::clone(&cache));
        first.query(&["a", "b"]).unwrap();
        // The second oracle sees the first one's work: no inner query needed.
        second.query(&["a", "b"]).unwrap();
        assert_eq!(second.inner().queries_answered(), 0);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }
}
