//! Equivalence oracles: conformance testing (W/Wp-method) and random walks.
//!
//! The conformance oracles no longer execute their suites one word at a time:
//! they hand the whole generated suite to [`QueryPool::run_tests`], which
//! memoizes every word in the shared prefix trie and shards execution across
//! the pool's worker threads with counterexample short-circuiting (§3.3 —
//! the test suite is *exponentially* large in the suite depth, which makes
//! it the natural parallelization target of the whole pipeline).

use std::fmt;
use std::hash::Hash;

use automata::Mealy;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::oracle::{EquivalenceOracle, OracleError};
use crate::pool::{shortest_failing_prefix, QueryPool};
use crate::wmethod::{w_method_suite_iter, wp_method_suite_iter};

/// Conformance-testing equivalence oracle using the Wp-method with a
/// configurable extra depth `k` (the "depth of the suite" of §3.4; the paper's
/// experiments use `k = 1`).
#[derive(Debug, Clone)]
pub struct WpMethodOracle {
    depth: usize,
    tests_run: u64,
}

impl WpMethodOracle {
    /// Creates the oracle with extra depth `depth`.
    pub fn new(depth: usize) -> Self {
        WpMethodOracle {
            depth,
            tests_run: 0,
        }
    }

    /// The extra depth `k`.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Number of conformance tests executed so far.
    pub fn tests_run(&self) -> u64 {
        self.tests_run
    }
}

impl<I, O> EquivalenceOracle<I, O> for WpMethodOracle
where
    I: Clone + Eq + Hash + fmt::Debug + Send + Sync,
    O: Clone + Eq + Hash + fmt::Debug + Send + Sync,
{
    fn find_counterexample(
        &mut self,
        pool: &mut QueryPool<'_, I, O>,
        hypothesis: &Mealy<I, O>,
    ) -> Result<Option<Vec<I>>, OracleError> {
        let outcome = pool.run_tests(hypothesis, wp_method_suite_iter(hypothesis, self.depth))?;
        self.tests_run += outcome.tests_executed;
        Ok(outcome.counterexample)
    }
}

/// Conformance-testing equivalence oracle using the plain W-method (larger
/// suites than Wp; kept for the ablation benchmarks).
#[derive(Debug, Clone)]
pub struct WMethodOracle {
    depth: usize,
    tests_run: u64,
}

impl WMethodOracle {
    /// Creates the oracle with extra depth `depth`.
    pub fn new(depth: usize) -> Self {
        WMethodOracle {
            depth,
            tests_run: 0,
        }
    }

    /// Number of conformance tests executed so far.
    pub fn tests_run(&self) -> u64 {
        self.tests_run
    }
}

impl<I, O> EquivalenceOracle<I, O> for WMethodOracle
where
    I: Clone + Eq + Hash + fmt::Debug + Send + Sync,
    O: Clone + Eq + Hash + fmt::Debug + Send + Sync,
{
    fn find_counterexample(
        &mut self,
        pool: &mut QueryPool<'_, I, O>,
        hypothesis: &Mealy<I, O>,
    ) -> Result<Option<Vec<I>>, OracleError> {
        let outcome = pool.run_tests(hypothesis, w_method_suite_iter(hypothesis, self.depth))?;
        self.tests_run += outcome.tests_executed;
        Ok(outcome.counterexample)
    }
}

/// Randomized equivalence oracle: samples random words of bounded length.
///
/// This is the "random walk" alternative the paper mentions in §6 as enabling
/// faster hypothesis refinement at the cost of the completeness guarantee of
/// Theorem 3.3.  Walks are generated and executed sequentially so that a
/// given seed explores the same words regardless of the worker count.
#[derive(Debug, Clone)]
pub struct RandomWalkOracle {
    walks: usize,
    max_length: usize,
    rng: StdRng,
}

impl RandomWalkOracle {
    /// Creates an oracle that tries `walks` random words of length up to
    /// `max_length`.
    pub fn new(walks: usize, max_length: usize, seed: u64) -> Self {
        RandomWalkOracle {
            walks,
            max_length: max_length.max(1),
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl<I, O> EquivalenceOracle<I, O> for RandomWalkOracle
where
    I: Clone + Eq + Hash + fmt::Debug + Send + Sync,
    O: Clone + Eq + fmt::Debug + Send + Sync,
{
    fn find_counterexample(
        &mut self,
        pool: &mut QueryPool<'_, I, O>,
        hypothesis: &Mealy<I, O>,
    ) -> Result<Option<Vec<I>>, OracleError> {
        let inputs = hypothesis.inputs();
        for _ in 0..self.walks {
            let length = self.rng.gen_range(1..=self.max_length);
            let word: Vec<I> = (0..length)
                .map(|_| inputs[self.rng.gen_range(0..inputs.len())].clone())
                .collect();
            let actual = pool.query_word(&word)?;
            let predicted = hypothesis.output_word(word.iter());
            if let Some(cex) = shortest_failing_prefix(&word, &actual, &predicted) {
                return Ok(Some(cex));
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{MealyOracle, MembershipOracle};
    use automata::MealyBuilder;

    /// A counter modulo `n` over a single input, outputting whether it
    /// wrapped.
    fn counter(n: usize) -> Mealy<&'static str, bool> {
        let mut b = MealyBuilder::new(vec!["t"]);
        let states: Vec<_> = (0..n).map(|_| b.add_state()).collect();
        for i in 0..n {
            b.add_transition(states[i], "t", states[(i + 1) % n], i + 1 == n);
        }
        b.build(states[0]).unwrap()
    }

    /// A factory cloning `system` into fresh simulated teachers.
    fn factory_for(
        system: &Mealy<&'static str, bool>,
    ) -> impl Fn() -> MealyOracle<&'static str, bool> {
        let system = system.clone();
        move || MealyOracle::new(system.clone())
    }

    #[test]
    fn equivalent_machines_yield_no_counterexample() {
        let target = counter(3);
        let factory = factory_for(&target);
        let mut pool = QueryPool::new(&factory, 1, true);
        let mut wp = WpMethodOracle::new(1);
        assert_eq!(wp.find_counterexample(&mut pool, &target).unwrap(), None);
        assert!(wp.tests_run() > 0);
    }

    #[test]
    fn wp_method_finds_missing_states_within_depth() {
        // Hypothesis: counter modulo 2; system: counter modulo 3.  The
        // difference needs 1 extra state, so depth 1 must find it.
        let factory = factory_for(&counter(3));
        let hypothesis = counter(2);
        let mut pool = QueryPool::new(&factory, 1, true);
        let mut wp = WpMethodOracle::new(1);
        let cex = wp
            .find_counterexample(&mut pool, &hypothesis)
            .unwrap()
            .expect("a counterexample must exist");
        // Replay: outputs must differ on the last symbol.
        let mut replay = MealyOracle::new(counter(3));
        assert_ne!(
            replay.query(&cex).unwrap().last(),
            hypothesis.output_word(cex.iter()).last()
        );
    }

    #[test]
    fn w_method_also_finds_the_counterexample() {
        let factory = factory_for(&counter(4));
        let hypothesis = counter(2);
        let mut pool = QueryPool::new(&factory, 1, true);
        let mut w = WMethodOracle::new(2);
        assert!(w
            .find_counterexample(&mut pool, &hypothesis)
            .unwrap()
            .is_some());
    }

    #[test]
    fn counterexamples_are_shortest_failing_prefixes() {
        let system = counter(3);
        let factory = factory_for(&system);
        let hypothesis = counter(2);
        let mut pool = QueryPool::new(&factory, 1, true);
        let mut wp = WpMethodOracle::new(1);
        let cex = wp
            .find_counterexample(&mut pool, &hypothesis)
            .unwrap()
            .unwrap();
        // Every proper prefix of the counterexample agrees.
        for len in 1..cex.len() {
            assert_eq!(
                system.output_word(cex[..len].iter()),
                hypothesis.output_word(cex[..len].iter())
            );
        }
    }

    #[test]
    fn parallel_and_sequential_conformance_agree() {
        let factory = factory_for(&counter(5));
        let hypothesis = counter(3);
        let mut found = Vec::new();
        for workers in [1usize, 4] {
            let mut pool = QueryPool::new(&factory, workers, true);
            let mut wp = WpMethodOracle::new(2);
            found.push(
                wp.find_counterexample(&mut pool, &hypothesis)
                    .unwrap()
                    .expect("counterexample exists"),
            );
        }
        assert_eq!(found[0], found[1]);
    }

    #[test]
    fn random_walks_eventually_find_large_differences() {
        let factory = factory_for(&counter(3));
        let hypothesis = counter(2);
        let mut pool = QueryPool::new(&factory, 1, true);
        let mut rw = RandomWalkOracle::new(200, 10, 42);
        assert!(rw
            .find_counterexample(&mut pool, &hypothesis)
            .unwrap()
            .is_some());
    }
}
