//! Equivalence oracles: conformance testing (W/Wp-method) and random walks.

use std::fmt;
use std::hash::Hash;

use automata::Mealy;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::oracle::{EquivalenceOracle, MembershipOracle, OracleError};
use crate::wmethod::{w_method_suite, wp_method_suite};

/// Runs a test word against both the hypothesis and the system and returns
/// the shortest failing prefix (so counterexamples stay short), if any.
fn run_test<I, O>(
    membership: &mut dyn MembershipOracle<I, O>,
    hypothesis: &Mealy<I, O>,
    word: &[I],
) -> Result<Option<Vec<I>>, OracleError>
where
    I: Clone + Eq + Hash + fmt::Debug,
    O: Clone + Eq + fmt::Debug,
{
    let actual = membership.query(word)?;
    let predicted = hypothesis.output_word(word.iter());
    for (i, (a, p)) in actual.iter().zip(&predicted).enumerate() {
        if a != p {
            return Ok(Some(word[..=i].to_vec()));
        }
    }
    Ok(None)
}

/// Conformance-testing equivalence oracle using the Wp-method with a
/// configurable extra depth `k` (the "depth of the suite" of §3.4; the paper's
/// experiments use `k = 1`).
#[derive(Debug, Clone)]
pub struct WpMethodOracle {
    depth: usize,
    tests_run: u64,
}

impl WpMethodOracle {
    /// Creates the oracle with extra depth `depth`.
    pub fn new(depth: usize) -> Self {
        WpMethodOracle {
            depth,
            tests_run: 0,
        }
    }

    /// The extra depth `k`.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Number of conformance tests executed so far.
    pub fn tests_run(&self) -> u64 {
        self.tests_run
    }
}

impl<I, O> EquivalenceOracle<I, O> for WpMethodOracle
where
    I: Clone + Eq + Hash + fmt::Debug,
    O: Clone + Eq + Hash + fmt::Debug,
{
    fn find_counterexample(
        &mut self,
        membership: &mut dyn MembershipOracle<I, O>,
        hypothesis: &Mealy<I, O>,
    ) -> Result<Option<Vec<I>>, OracleError> {
        for word in wp_method_suite(hypothesis, self.depth) {
            self.tests_run += 1;
            if let Some(cex) = run_test(membership, hypothesis, &word)? {
                return Ok(Some(cex));
            }
        }
        Ok(None)
    }
}

/// Conformance-testing equivalence oracle using the plain W-method (larger
/// suites than Wp; kept for the ablation benchmarks).
#[derive(Debug, Clone)]
pub struct WMethodOracle {
    depth: usize,
    tests_run: u64,
}

impl WMethodOracle {
    /// Creates the oracle with extra depth `depth`.
    pub fn new(depth: usize) -> Self {
        WMethodOracle {
            depth,
            tests_run: 0,
        }
    }

    /// Number of conformance tests executed so far.
    pub fn tests_run(&self) -> u64 {
        self.tests_run
    }
}

impl<I, O> EquivalenceOracle<I, O> for WMethodOracle
where
    I: Clone + Eq + Hash + fmt::Debug,
    O: Clone + Eq + Hash + fmt::Debug,
{
    fn find_counterexample(
        &mut self,
        membership: &mut dyn MembershipOracle<I, O>,
        hypothesis: &Mealy<I, O>,
    ) -> Result<Option<Vec<I>>, OracleError> {
        for word in w_method_suite(hypothesis, self.depth) {
            self.tests_run += 1;
            if let Some(cex) = run_test(membership, hypothesis, &word)? {
                return Ok(Some(cex));
            }
        }
        Ok(None)
    }
}

/// Randomized equivalence oracle: samples random words of bounded length.
///
/// This is the "random walk" alternative the paper mentions in §6 as enabling
/// faster hypothesis refinement at the cost of the completeness guarantee of
/// Theorem 3.3.
#[derive(Debug, Clone)]
pub struct RandomWalkOracle {
    walks: usize,
    max_length: usize,
    rng: StdRng,
}

impl RandomWalkOracle {
    /// Creates an oracle that tries `walks` random words of length up to
    /// `max_length`.
    pub fn new(walks: usize, max_length: usize, seed: u64) -> Self {
        RandomWalkOracle {
            walks,
            max_length: max_length.max(1),
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl<I, O> EquivalenceOracle<I, O> for RandomWalkOracle
where
    I: Clone + Eq + Hash + fmt::Debug,
    O: Clone + Eq + fmt::Debug,
{
    fn find_counterexample(
        &mut self,
        membership: &mut dyn MembershipOracle<I, O>,
        hypothesis: &Mealy<I, O>,
    ) -> Result<Option<Vec<I>>, OracleError> {
        let inputs = hypothesis.inputs();
        for _ in 0..self.walks {
            let length = self.rng.gen_range(1..=self.max_length);
            let word: Vec<I> = (0..length)
                .map(|_| inputs[self.rng.gen_range(0..inputs.len())].clone())
                .collect();
            if let Some(cex) = run_test(membership, hypothesis, &word)? {
                return Ok(Some(cex));
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::MealyOracle;
    use automata::MealyBuilder;

    /// A counter modulo `n` over a single input, outputting whether it
    /// wrapped.
    fn counter(n: usize) -> Mealy<&'static str, bool> {
        let mut b = MealyBuilder::new(vec!["t"]);
        let states: Vec<_> = (0..n).map(|_| b.add_state()).collect();
        for i in 0..n {
            b.add_transition(states[i], "t", states[(i + 1) % n], i + 1 == n);
        }
        b.build(states[0]).unwrap()
    }

    #[test]
    fn equivalent_machines_yield_no_counterexample() {
        let target = counter(3);
        let mut oracle = MealyOracle::new(target.clone());
        let mut wp = WpMethodOracle::new(1);
        assert_eq!(wp.find_counterexample(&mut oracle, &target).unwrap(), None);
        assert!(wp.tests_run() > 0);
    }

    #[test]
    fn wp_method_finds_missing_states_within_depth() {
        // Hypothesis: counter modulo 2; system: counter modulo 3.  The
        // difference needs 1 extra state, so depth 1 must find it.
        let system = counter(3);
        let hypothesis = counter(2);
        let mut oracle = MealyOracle::new(system);
        let mut wp = WpMethodOracle::new(1);
        let cex = wp
            .find_counterexample(&mut oracle, &hypothesis)
            .unwrap()
            .expect("a counterexample must exist");
        // Replay: outputs must differ on the last symbol.
        let mut replay = MealyOracle::new(counter(3));
        assert_ne!(
            replay.query(&cex).unwrap().last(),
            hypothesis.output_word(cex.iter()).last()
        );
    }

    #[test]
    fn w_method_also_finds_the_counterexample() {
        let system = counter(4);
        let hypothesis = counter(2);
        let mut oracle = MealyOracle::new(system);
        let mut w = WMethodOracle::new(2);
        assert!(w
            .find_counterexample(&mut oracle, &hypothesis)
            .unwrap()
            .is_some());
    }

    #[test]
    fn counterexamples_are_shortest_failing_prefixes() {
        let system = counter(3);
        let hypothesis = counter(2);
        let mut oracle = MealyOracle::new(system.clone());
        let mut wp = WpMethodOracle::new(1);
        let cex = wp
            .find_counterexample(&mut oracle, &hypothesis)
            .unwrap()
            .unwrap();
        // Every proper prefix of the counterexample agrees.
        for len in 1..cex.len() {
            assert_eq!(
                system.output_word(cex[..len].iter()),
                hypothesis.output_word(cex[..len].iter())
            );
        }
    }

    #[test]
    fn random_walks_eventually_find_large_differences() {
        let system = counter(3);
        let hypothesis = counter(2);
        let mut oracle = MealyOracle::new(system);
        let mut rw = RandomWalkOracle::new(200, 10, 42);
        assert!(rw
            .find_counterexample(&mut oracle, &hypothesis)
            .unwrap()
            .is_some());
    }
}
