//! The main L* learning loop for Mealy machines.

use std::fmt;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use automata::Mealy;
use obs::Recorder;

use crate::oracle::{EquivalenceOracle, NonDeterminism, OracleError};
use crate::pool::{OracleFactory, QueryPool};
use crate::table::ObservationTable;

/// A live, thread-shared view of a learning run: the hypothesis size and the
/// central membership-query count, updated by [`learn_mealy`] at every
/// hypothesis round.  Hand an `Arc<LearnProgress>` to
/// [`LearnOptions::progress`] and poll it from another thread — the `cqd`
/// daemon streams these counters to clients while a learn job runs.
#[derive(Debug, Default)]
pub struct LearnProgress {
    states: AtomicU64,
    membership_queries: AtomicU64,
}

impl LearnProgress {
    /// Creates a zeroed progress tracker.
    pub fn new() -> Self {
        LearnProgress::default()
    }

    /// States of the current hypothesis (0 until the first table closure).
    pub fn states(&self) -> u64 {
        self.states.load(Ordering::Relaxed)
    }

    /// Membership queries issued so far (cache hits included).
    pub fn membership_queries(&self) -> u64 {
        self.membership_queries.load(Ordering::Relaxed)
    }

    fn record(&self, states: u64, membership_queries: u64) {
        self.states.store(states, Ordering::Relaxed);
        self.membership_queries
            .store(membership_queries, Ordering::Relaxed);
    }
}

/// Options controlling the learning loop.
#[derive(Debug, Clone)]
pub struct LearnOptions {
    /// Abort if the hypothesis grows beyond this many states.
    pub max_states: usize,
    /// Abort if learning exceeds this wall-clock budget (`None` = unlimited).
    pub time_budget: Option<Duration>,
    /// Worker threads for parallel conformance testing and batched table
    /// filling.  `0` (the default) resolves the count from the
    /// `CACHEQUERY_WORKERS` environment variable, falling back to the
    /// machine's available parallelism.
    pub workers: usize,
    /// Whether to memoize membership queries in the shared prefix-trie
    /// [`QueryCache`](crate::QueryCache) (default `true`; the ablation
    /// benchmarks turn it off).
    pub memoize: bool,
    /// Optional live progress counters, updated once per hypothesis round
    /// (table closure / equivalence query).  `None` (the default) costs
    /// nothing.
    pub progress: Option<Arc<LearnProgress>>,
    /// Optional span recorder: when present, every phase region (table fill,
    /// closure, equivalence, identification) is emitted as a child span of
    /// one `lstar.learn` root span, with its membership-query delta attached.
    /// `None` (the default) costs one predictable branch per phase.
    pub recorder: Option<Arc<Recorder>>,
}

impl Default for LearnOptions {
    fn default() -> Self {
        LearnOptions {
            max_states: 1 << 20,
            time_budget: None,
            workers: 0,
            memoize: true,
            progress: None,
            recorder: None,
        }
    }
}

/// The four query-issuing phases of the learner loop, in paper terms:
/// observation-table filling (§5 `fillTable`), closure (promoting unclosed
/// rows), equivalence (conformance testing the hypothesis, §3.3), and
/// identification (Rivest–Schapire counterexample analysis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LearnPhase {
    /// Filling observation-table cells (initial fill and post-suffix
    /// refills).
    TableFill,
    /// Closing the table: promoting unclosed rows and filling what that
    /// opens up.
    Closure,
    /// Equivalence queries: running the conformance suite against the
    /// hypothesis.
    Equivalence,
    /// Counterexample identification: replaying the counterexample and the
    /// Rivest–Schapire binary search for a distinguishing suffix.
    Identification,
}

impl LearnPhase {
    /// Every phase, in loop order.
    pub const ALL: [LearnPhase; 4] = [
        LearnPhase::TableFill,
        LearnPhase::Closure,
        LearnPhase::Equivalence,
        LearnPhase::Identification,
    ];

    /// Stable snake_case name (used in profiles and wire formats).
    pub fn name(self) -> &'static str {
        match self {
            LearnPhase::TableFill => "table_fill",
            LearnPhase::Closure => "closure",
            LearnPhase::Equivalence => "equivalence",
            LearnPhase::Identification => "identification",
        }
    }

    /// Span name emitted when tracing is on.
    pub fn span_name(self) -> &'static str {
        match self {
            LearnPhase::TableFill => "lstar.table_fill",
            LearnPhase::Closure => "lstar.closure",
            LearnPhase::Equivalence => "lstar.equivalence",
            LearnPhase::Identification => "lstar.identification",
        }
    }
}

/// Accumulated cost of one [`LearnPhase`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseStats {
    /// Membership queries issued during the phase (cache hits included).
    pub queries: u64,
    /// Wall-clock time spent in the phase.
    pub duration: Duration,
}

/// Per-phase breakdown of a learning run.
///
/// The regions partition the learner loop: every membership query the run
/// issues lands in exactly one phase, so
/// [`total_queries`](LearnPhases::total_queries) equals
/// [`LearnStats::membership_queries`] exactly (pinned by tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LearnPhases {
    /// Observation-table fills.
    pub table_fill: PhaseStats,
    /// Table closure.
    pub closure: PhaseStats,
    /// Equivalence queries.
    pub equivalence: PhaseStats,
    /// Counterexample identification.
    pub identification: PhaseStats,
}

impl LearnPhases {
    /// The accumulator for `phase`.
    pub fn get(&self, phase: LearnPhase) -> PhaseStats {
        match phase {
            LearnPhase::TableFill => self.table_fill,
            LearnPhase::Closure => self.closure,
            LearnPhase::Equivalence => self.equivalence,
            LearnPhase::Identification => self.identification,
        }
    }

    fn slot_mut(&mut self, phase: LearnPhase) -> &mut PhaseStats {
        match phase {
            LearnPhase::TableFill => &mut self.table_fill,
            LearnPhase::Closure => &mut self.closure,
            LearnPhase::Equivalence => &mut self.equivalence,
            LearnPhase::Identification => &mut self.identification,
        }
    }

    /// Membership queries summed over all phases (equals
    /// [`LearnStats::membership_queries`]).
    pub fn total_queries(&self) -> u64 {
        LearnPhase::ALL.iter().map(|&p| self.get(p).queries).sum()
    }

    /// Wall-clock summed over all phases (a lower bound on
    /// [`LearnStats::duration`]: hypothesis construction runs between
    /// regions).
    pub fn total_duration(&self) -> Duration {
        LearnPhase::ALL.iter().map(|&p| self.get(p).duration).sum()
    }
}

/// Scoped accounting for one phase region: membership-query delta from the
/// pool plus wall-clock, folded into [`LearnPhases`] — and, when tracing, a
/// child span of the run's root span carrying the query count.
struct PhaseRegion<'r> {
    span: Option<obs::Span<'r>>,
    start: Instant,
    queries_before: u64,
}

impl<'r> PhaseRegion<'r> {
    fn begin(
        recorder: Option<&'r Recorder>,
        root: Option<u64>,
        phase: LearnPhase,
        queries_before: u64,
    ) -> Self {
        PhaseRegion {
            span: recorder.map(|r| r.span_with_parent(phase.span_name(), root)),
            start: Instant::now(),
            queries_before,
        }
    }

    fn end(mut self, phases: &mut LearnPhases, phase: LearnPhase, queries_after: u64) {
        let queries = queries_after - self.queries_before;
        let slot = phases.slot_mut(phase);
        slot.queries += queries;
        slot.duration += self.start.elapsed();
        if let Some(span) = &mut self.span {
            span.set("queries", queries);
        }
        // Dropping `self` emits the span record, if any.
    }
}

/// Statistics of one learning run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LearnStats {
    /// Membership queries issued (counted centrally by the learner's query
    /// pool; cache hits included).
    pub membership_queries: u64,
    /// Membership queries answered from the prefix-trie cache.
    pub cache_hits: u64,
    /// Membership queries that had to be answered by the underlying oracle.
    pub cache_misses: u64,
    /// Equivalence queries issued.
    pub equivalence_queries: u64,
    /// Conformance tests executed across all equivalence queries.
    pub conformance_tests: u64,
    /// Worker shards used across all equivalence queries.
    pub equivalence_shards: u64,
    /// Counterexamples processed.
    pub counterexamples: u64,
    /// Number of states of the final hypothesis.
    pub states: usize,
    /// Number of distinguishing suffixes in the final observation table.
    pub suffixes: usize,
    /// Wall-clock learning time.
    pub duration: Duration,
    /// Per-phase breakdown: every membership query lands in exactly one
    /// phase, so `phases.total_queries() == membership_queries`.
    pub phases: LearnPhases,
}

impl LearnStats {
    /// Fraction of membership queries served from the query cache (`0.0`
    /// when no queries were asked or memoization was disabled).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// Errors raised by [`learn_mealy`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LearnError {
    /// The membership or equivalence oracle failed (hardware error, detected
    /// nondeterminism, …).
    Oracle(OracleError),
    /// The hypothesis exceeded [`LearnOptions::max_states`].
    StateLimitExceeded(usize),
    /// The time budget was exhausted before learning converged.
    TimeBudgetExceeded,
    /// A counterexample returned by the equivalence oracle was not actually a
    /// counterexample (this indicates a non-deterministic system under
    /// learning, cf. the reset-sequence discussion in §7.1).
    SpuriousCounterexample,
    /// The system under learning was *statistically detected* to be
    /// non-deterministic: repeated executions of the same query kept
    /// disagreeing past the voting margin, so the run aborted early with
    /// evidence instead of diverging on an unlearnable target (an adaptive
    /// follower set, a wrong reset sequence).
    NotDeterministic(NonDeterminism),
}

impl fmt::Display for LearnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LearnError::Oracle(e) => write!(f, "{e}"),
            LearnError::StateLimitExceeded(n) => {
                write!(f, "hypothesis exceeded the state limit of {n}")
            }
            LearnError::TimeBudgetExceeded => write!(f, "learning time budget exhausted"),
            LearnError::SpuriousCounterexample => write!(
                f,
                "equivalence oracle returned a spurious counterexample; \
                 the system under learning is probably non-deterministic"
            ),
            LearnError::NotDeterministic(evidence) => write!(
                f,
                "the system under learning is not deterministic: {evidence}"
            ),
        }
    }
}

impl std::error::Error for LearnError {}

impl From<OracleError> for LearnError {
    fn from(e: OracleError) -> Self {
        match e.non_determinism {
            Some(evidence) => LearnError::NotDeterministic(evidence),
            None => LearnError::Oracle(e),
        }
    }
}

/// Learns a deterministic Mealy machine over `inputs` from an oracle factory
/// and an equivalence oracle (Angluin's L* adapted to Mealy machines, with
/// Rivest–Schapire counterexample processing).
///
/// The factory is used to build the learner's [`QueryPool`]: one local oracle
/// answers sequential queries, per-worker oracles answer sharded conformance
/// suites and batched table fills, and every answer is memoized in a shared
/// prefix-trie cache (see [`LearnOptions::workers`] and
/// [`LearnOptions::memoize`]).
///
/// # Errors
///
/// See [`LearnError`].
pub fn learn_mealy<I, O>(
    inputs: Vec<I>,
    factory: &dyn OracleFactory<I, O>,
    equivalence: &mut dyn EquivalenceOracle<I, O>,
    options: LearnOptions,
) -> Result<(Mealy<I, O>, LearnStats), LearnError>
where
    I: Clone + Eq + Hash + fmt::Debug + Send + Sync,
    O: Clone + Eq + Hash + fmt::Debug + Send + Sync,
{
    let start = Instant::now();
    let mut stats = LearnStats::default();
    let mut pool = QueryPool::new(factory, options.workers, options.memoize);
    let mut table = ObservationTable::new(inputs);
    let recorder = options.recorder.as_deref();
    let root = recorder.map(|r| r.span("lstar.learn"));
    let root_id = root.as_ref().map(obs::Span::id);
    let mut phases = LearnPhases::default();

    let region = PhaseRegion::begin(
        recorder,
        root_id,
        LearnPhase::TableFill,
        pool.queries_answered(),
    );
    table.fill(&mut pool)?;
    region.end(&mut phases, LearnPhase::TableFill, pool.queries_answered());

    let result = loop {
        if let Some(budget) = options.time_budget {
            if start.elapsed() > budget {
                return Err(LearnError::TimeBudgetExceeded);
            }
        }

        // Close the table.
        let region = PhaseRegion::begin(
            recorder,
            root_id,
            LearnPhase::Closure,
            pool.queries_answered(),
        );
        while let Some(witness) = table.find_unclosed() {
            table.promote(witness);
            if table.short_prefixes().len() > options.max_states {
                return Err(LearnError::StateLimitExceeded(options.max_states));
            }
            table.fill(&mut pool)?;
        }
        region.end(&mut phases, LearnPhase::Closure, pool.queries_answered());

        let (hypothesis, access) = table.hypothesis();
        if let Some(progress) = &options.progress {
            progress.record(hypothesis.num_states() as u64, pool.queries_answered());
        }

        // Ask for a counterexample.
        stats.equivalence_queries += 1;
        let region = PhaseRegion::begin(
            recorder,
            root_id,
            LearnPhase::Equivalence,
            pool.queries_answered(),
        );
        let counterexample = equivalence.find_counterexample(&mut pool, &hypothesis)?;
        region.end(
            &mut phases,
            LearnPhase::Equivalence,
            pool.queries_answered(),
        );
        let Some(counterexample) = counterexample else {
            break hypothesis;
        };
        stats.counterexamples += 1;

        // Process the counterexample (Rivest–Schapire): find a distinguishing
        // suffix by binary search and add it to the table.  The same
        // counterexample may need to be processed several times before it
        // stops being one.
        let mut current_hypothesis = hypothesis;
        let mut current_access = access;
        loop {
            let region = PhaseRegion::begin(
                recorder,
                root_id,
                LearnPhase::Identification,
                pool.queries_answered(),
            );
            let actual = pool.query_word(&counterexample)?;
            let predicted = current_hypothesis.output_word(counterexample.iter());
            if actual == predicted {
                region.end(
                    &mut phases,
                    LearnPhase::Identification,
                    pool.queries_answered(),
                );
                break;
            }
            let suffix = find_distinguishing_suffix(
                &mut pool,
                &current_hypothesis,
                &current_access,
                &counterexample,
            )?;
            region.end(
                &mut phases,
                LearnPhase::Identification,
                pool.queries_answered(),
            );
            if !table.add_suffix(suffix) {
                // The suffix was already present: adding it cannot refine the
                // table, so the system is answering inconsistently.
                return Err(LearnError::SpuriousCounterexample);
            }
            let region = PhaseRegion::begin(
                recorder,
                root_id,
                LearnPhase::TableFill,
                pool.queries_answered(),
            );
            table.fill(&mut pool)?;
            region.end(&mut phases, LearnPhase::TableFill, pool.queries_answered());
            let region = PhaseRegion::begin(
                recorder,
                root_id,
                LearnPhase::Closure,
                pool.queries_answered(),
            );
            while let Some(witness) = table.find_unclosed() {
                table.promote(witness);
                if table.short_prefixes().len() > options.max_states {
                    return Err(LearnError::StateLimitExceeded(options.max_states));
                }
                table.fill(&mut pool)?;
            }
            region.end(&mut phases, LearnPhase::Closure, pool.queries_answered());
            let (h, a) = table.hypothesis();
            current_hypothesis = h;
            current_access = a;
        }
    };

    if let Some(progress) = &options.progress {
        progress.record(result.num_states() as u64, pool.queries_answered());
    }
    stats.phases = phases;
    stats.membership_queries = pool.queries_answered();
    stats.cache_hits = pool.cache_hits();
    stats.cache_misses = pool.cache_misses();
    stats.conformance_tests = pool.tests_run();
    stats.equivalence_shards = pool.shards_run();
    stats.states = result.num_states();
    stats.suffixes = table.suffixes().len();
    stats.duration = start.elapsed();
    Ok((result, stats))
}

/// Rivest–Schapire analysis: finds a suffix of the counterexample that
/// distinguishes two rows the current hypothesis merges.
///
/// For position `i`, the check word is `access(state after w[..i]) · w[i..]`;
/// its final output matches the hypothesis for `i = |w|−1` and mismatches for
/// `i = 0`, so a binary search locates an index where the answer flips, and
/// `w[i+1..]` is the distinguishing suffix.
fn find_distinguishing_suffix<I, O>(
    pool: &mut QueryPool<'_, I, O>,
    hypothesis: &Mealy<I, O>,
    access: &[Vec<I>],
    counterexample: &[I],
) -> Result<Vec<I>, OracleError>
where
    I: Clone + Eq + Hash + fmt::Debug + Send + Sync,
    O: Clone + Eq + fmt::Debug + Send + Sync,
{
    let expected = hypothesis
        .output_word(counterexample.iter())
        .last()
        .cloned()
        .expect("counterexamples are non-empty");

    let check = |pool: &mut QueryPool<'_, I, O>, i: usize| -> Result<bool, OracleError> {
        // Word: access string of the state reached after w[..i], followed by
        // the rest of the counterexample.
        let state = hypothesis.delta(hypothesis.initial(), counterexample[..i].iter());
        let mut word = access[state.index()].clone();
        word.extend(counterexample[i..].iter().cloned());
        if word.is_empty() {
            return Ok(true);
        }
        let out = pool
            .query_word(&word)?
            .pop()
            .expect("non-empty words have outputs");
        Ok(out == expected)
    };

    // Invariant: check(lo) = false, check(hi) = true.
    let mut lo = 0usize;
    let mut hi = counterexample.len() - 1;
    if check(pool, hi)? {
        // Binary search between lo and hi.
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if check(pool, mid)? {
                hi = mid;
            } else {
                lo = mid;
            }
        }
    } else {
        // The flip happens at the very last position: the distinguishing
        // suffix is the last symbol alone.
        lo = counterexample.len() - 1;
    }
    let suffix = counterexample[lo + 1..].to_vec();
    if suffix.is_empty() {
        // Fall back to the full last symbol (can only happen for length-1
        // counterexamples, where the single symbol must already distinguish).
        Ok(vec![counterexample[counterexample.len() - 1].clone()])
    } else {
        Ok(suffix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equivalence::{RandomWalkOracle, WMethodOracle, WpMethodOracle};
    use crate::oracle::MealyOracle;
    use automata::{equivalent, MealyBuilder};

    fn counter(n: usize) -> Mealy<&'static str, bool> {
        let mut b = MealyBuilder::new(vec!["t", "r"]);
        let states: Vec<_> = (0..n).map(|_| b.add_state()).collect();
        for i in 0..n {
            b.add_transition(states[i], "t", states[(i + 1) % n], i + 1 == n);
            b.add_transition(states[i], "r", states[0], false);
        }
        b.build(states[0]).unwrap()
    }

    fn learn(
        target: &Mealy<&'static str, bool>,
        depth: usize,
    ) -> (Mealy<&'static str, bool>, LearnStats) {
        let teacher = target.clone();
        let factory = move || MealyOracle::new(teacher.clone());
        let mut eq = WpMethodOracle::new(depth);
        learn_mealy(
            target.inputs().to_vec(),
            &factory,
            &mut eq,
            LearnOptions::default(),
        )
        .unwrap()
    }

    #[test]
    fn learns_small_counters_exactly() {
        // The wrap-only counter needs a conformance depth of n - 1 to be
        // distinguishable from smaller hypotheses (Theorem 3.3), so the test
        // passes the counter size as the suite depth.
        for n in [1, 2, 3, 5, 6] {
            let target = counter(n);
            let (learned, stats) = learn(&target, n);
            assert!(equivalent(&learned, &target), "counter({n}) mislearned");
            assert_eq!(learned.num_states(), n);
            assert_eq!(stats.states, n);
            assert!(stats.membership_queries > 0);
        }
    }

    #[test]
    fn learns_with_the_w_method_too() {
        let target = counter(4);
        let teacher = target.clone();
        let factory = move || MealyOracle::new(teacher.clone());
        let mut eq = WMethodOracle::new(4);
        let (learned, _) = learn_mealy(
            target.inputs().to_vec(),
            &factory,
            &mut eq,
            LearnOptions::default(),
        )
        .unwrap();
        assert!(equivalent(&learned, &target));
    }

    #[test]
    fn random_walk_oracle_learns_with_high_probability() {
        let target = counter(5);
        let teacher = target.clone();
        let factory = move || MealyOracle::new(teacher.clone());
        let mut eq = RandomWalkOracle::new(2000, 20, 7);
        let (learned, _) = learn_mealy(
            target.inputs().to_vec(),
            &factory,
            &mut eq,
            LearnOptions::default(),
        )
        .unwrap();
        assert!(equivalent(&learned, &target));
    }

    #[test]
    fn state_limit_is_enforced() {
        let target = counter(10);
        let teacher = target.clone();
        let factory = move || MealyOracle::new(teacher.clone());
        let mut eq = WpMethodOracle::new(10);
        let result = learn_mealy(
            target.inputs().to_vec(),
            &factory,
            &mut eq,
            LearnOptions {
                max_states: 4,
                ..LearnOptions::default()
            },
        );
        assert!(matches!(result, Err(LearnError::StateLimitExceeded(4))));
    }

    #[test]
    fn stats_reflect_the_run() {
        let target = counter(6);
        let (_, stats) = learn(&target, 6);
        assert!(stats.counterexamples >= 1);
        assert!(stats.equivalence_queries >= stats.counterexamples);
        assert!(stats.suffixes >= 2);
        assert!(stats.duration > Duration::ZERO);
        // The observation table refills overlapping words constantly: the
        // memoization layer must be seeing real traffic.
        assert!(stats.cache_hits > 0);
        assert!(stats.cache_misses > 0);
        assert_eq!(
            stats.membership_queries,
            stats.cache_hits + stats.cache_misses
        );
        assert!(stats.cache_hit_rate() > 0.0 && stats.cache_hit_rate() < 1.0);
        assert!(stats.conformance_tests > 0);
        assert!(stats.equivalence_shards >= stats.equivalence_queries);
        // The phase regions partition the loop: per-phase query counts sum
        // exactly to the central total, and every phase did real work on a
        // multi-round learn.
        assert_eq!(stats.phases.total_queries(), stats.membership_queries);
        assert!(stats.phases.table_fill.queries > 0);
        assert!(stats.phases.equivalence.queries > 0);
        assert!(stats.phases.identification.queries > 0);
        assert!(stats.phases.total_duration() <= stats.duration);
    }

    #[test]
    fn recorder_emits_nested_phase_spans() {
        use obs::RingSink;
        let target = counter(4);
        let teacher = target.clone();
        let factory = move || MealyOracle::new(teacher.clone());
        let mut eq = WpMethodOracle::new(4);
        let sink = Arc::new(RingSink::new(4096));
        let recorder = Arc::new(Recorder::new(sink.clone()));
        let (_, stats) = learn_mealy(
            target.inputs().to_vec(),
            &factory,
            &mut eq,
            LearnOptions {
                recorder: Some(recorder),
                ..LearnOptions::default()
            },
        )
        .unwrap();
        let lines = sink.drain();
        assert_eq!(sink.dropped(), 0, "ring clipped the trace");
        // Exactly one root span, named lstar.learn, emitted last.
        let roots: Vec<&String> = lines
            .iter()
            .filter(|l| l.contains("\"parent\":null"))
            .collect();
        assert_eq!(roots.len(), 1);
        assert!(roots[0].contains("\"name\":\"lstar.learn\""));
        assert!(lines.last().unwrap().contains("\"name\":\"lstar.learn\""));
        // Every phase of a multi-round learn shows up as a child span.
        for phase in LearnPhase::ALL {
            assert!(
                lines
                    .iter()
                    .any(|l| l.contains(&format!("\"name\":\"{}\"", phase.span_name()))),
                "no span for {}",
                phase.name()
            );
        }
        // Phase spans carry the query delta that the profile accumulated.
        assert!(lines
            .iter()
            .any(|l| l.contains("\"fields\":{\"queries\":") && !l.contains("\"queries\":0}")));
        assert!(stats.phases.total_queries() > 0);
    }

    #[test]
    fn multi_worker_learning_matches_single_worker() {
        let target = counter(6);
        let teacher = target.clone();
        let factory = move || MealyOracle::new(teacher.clone());
        let mut machines = Vec::new();
        for workers in [1usize, 4] {
            let mut eq = WpMethodOracle::new(6);
            let (learned, stats) = learn_mealy(
                target.inputs().to_vec(),
                &factory,
                &mut eq,
                LearnOptions {
                    workers,
                    ..LearnOptions::default()
                },
            )
            .unwrap();
            assert!(equivalent(&learned, &target));
            assert_eq!(stats.states, 6);
            machines.push(learned);
        }
        // Deterministic short-circuiting: both runs learn the same machine.
        assert!(equivalent(&machines[0], &machines[1]));
    }
}
