//! The main L* learning loop for Mealy machines.

use std::fmt;
use std::hash::Hash;
use std::time::{Duration, Instant};

use automata::Mealy;

use crate::oracle::{EquivalenceOracle, MembershipOracle, OracleError};
use crate::table::ObservationTable;

/// Options controlling the learning loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LearnOptions {
    /// Abort if the hypothesis grows beyond this many states.
    pub max_states: usize,
    /// Abort if learning exceeds this wall-clock budget (`None` = unlimited).
    pub time_budget: Option<Duration>,
}

impl Default for LearnOptions {
    fn default() -> Self {
        LearnOptions {
            max_states: 1 << 20,
            time_budget: None,
        }
    }
}

/// Statistics of one learning run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LearnStats {
    /// Membership queries issued (as counted by the membership oracle, i.e.
    /// after any caching the caller wrapped around it).
    pub membership_queries: u64,
    /// Equivalence queries issued.
    pub equivalence_queries: u64,
    /// Counterexamples processed.
    pub counterexamples: u64,
    /// Number of states of the final hypothesis.
    pub states: usize,
    /// Number of distinguishing suffixes in the final observation table.
    pub suffixes: usize,
    /// Wall-clock learning time.
    pub duration: Duration,
}

/// Errors raised by [`learn_mealy`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LearnError {
    /// The membership or equivalence oracle failed (hardware error, detected
    /// nondeterminism, …).
    Oracle(OracleError),
    /// The hypothesis exceeded [`LearnOptions::max_states`].
    StateLimitExceeded(usize),
    /// The time budget was exhausted before learning converged.
    TimeBudgetExceeded,
    /// A counterexample returned by the equivalence oracle was not actually a
    /// counterexample (this indicates a non-deterministic system under
    /// learning, cf. the reset-sequence discussion in §7.1).
    SpuriousCounterexample,
}

impl fmt::Display for LearnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LearnError::Oracle(e) => write!(f, "{e}"),
            LearnError::StateLimitExceeded(n) => {
                write!(f, "hypothesis exceeded the state limit of {n}")
            }
            LearnError::TimeBudgetExceeded => write!(f, "learning time budget exhausted"),
            LearnError::SpuriousCounterexample => write!(
                f,
                "equivalence oracle returned a spurious counterexample; \
                 the system under learning is probably non-deterministic"
            ),
        }
    }
}

impl std::error::Error for LearnError {}

impl From<OracleError> for LearnError {
    fn from(e: OracleError) -> Self {
        LearnError::Oracle(e)
    }
}

/// Learns a deterministic Mealy machine over `inputs` from a membership and an
/// equivalence oracle (Angluin's L* adapted to Mealy machines, with
/// Rivest–Schapire counterexample processing).
///
/// # Errors
///
/// See [`LearnError`].
pub fn learn_mealy<I, O>(
    inputs: Vec<I>,
    membership: &mut dyn MembershipOracle<I, O>,
    equivalence: &mut dyn EquivalenceOracle<I, O>,
    options: LearnOptions,
) -> Result<(Mealy<I, O>, LearnStats), LearnError>
where
    I: Clone + Eq + Hash + fmt::Debug,
    O: Clone + Eq + Hash + fmt::Debug,
{
    let start = Instant::now();
    let mut stats = LearnStats::default();
    let mut table = ObservationTable::new(inputs);
    table.fill(membership)?;

    loop {
        if let Some(budget) = options.time_budget {
            if start.elapsed() > budget {
                return Err(LearnError::TimeBudgetExceeded);
            }
        }

        // Close the table.
        while let Some(witness) = table.find_unclosed() {
            table.promote(witness);
            if table.short_prefixes().len() > options.max_states {
                return Err(LearnError::StateLimitExceeded(options.max_states));
            }
            table.fill(membership)?;
        }

        let (hypothesis, access) = table.hypothesis();

        // Ask for a counterexample.
        stats.equivalence_queries += 1;
        let Some(counterexample) = equivalence.find_counterexample(membership, &hypothesis)? else {
            stats.membership_queries = membership.queries_answered();
            stats.states = hypothesis.num_states();
            stats.suffixes = table.suffixes().len();
            stats.duration = start.elapsed();
            return Ok((hypothesis, stats));
        };
        stats.counterexamples += 1;

        // Process the counterexample (Rivest–Schapire): find a distinguishing
        // suffix by binary search and add it to the table.  The same
        // counterexample may need to be processed several times before it
        // stops being one.
        let mut current_hypothesis = hypothesis;
        let mut current_access = access;
        loop {
            let actual = membership.query(&counterexample)?;
            let predicted = current_hypothesis.output_word(counterexample.iter());
            if actual == predicted {
                break;
            }
            let suffix = find_distinguishing_suffix(
                membership,
                &current_hypothesis,
                &current_access,
                &counterexample,
            )?;
            if !table.add_suffix(suffix) {
                // The suffix was already present: adding it cannot refine the
                // table, so the system is answering inconsistently.
                return Err(LearnError::SpuriousCounterexample);
            }
            table.fill(membership)?;
            while let Some(witness) = table.find_unclosed() {
                table.promote(witness);
                if table.short_prefixes().len() > options.max_states {
                    return Err(LearnError::StateLimitExceeded(options.max_states));
                }
                table.fill(membership)?;
            }
            let (h, a) = table.hypothesis();
            current_hypothesis = h;
            current_access = a;
        }
    }
}

/// Rivest–Schapire analysis: finds a suffix of the counterexample that
/// distinguishes two rows the current hypothesis merges.
///
/// For position `i`, the check word is `access(state after w[..i]) · w[i..]`;
/// its final output matches the hypothesis for `i = |w|−1` and mismatches for
/// `i = 0`, so a binary search locates an index where the answer flips, and
/// `w[i+1..]` is the distinguishing suffix.
fn find_distinguishing_suffix<I, O>(
    membership: &mut dyn MembershipOracle<I, O>,
    hypothesis: &Mealy<I, O>,
    access: &[Vec<I>],
    counterexample: &[I],
) -> Result<Vec<I>, OracleError>
where
    I: Clone + Eq + Hash + fmt::Debug,
    O: Clone + Eq + fmt::Debug,
{
    let expected = hypothesis
        .output_word(counterexample.iter())
        .last()
        .cloned()
        .expect("counterexamples are non-empty");

    let check =
        |membership: &mut dyn MembershipOracle<I, O>, i: usize| -> Result<bool, OracleError> {
            // Word: access string of the state reached after w[..i], followed by
            // the rest of the counterexample.
            let state = hypothesis.delta(hypothesis.initial(), counterexample[..i].iter());
            let mut word = access[state.index()].clone();
            word.extend(counterexample[i..].iter().cloned());
            if word.is_empty() {
                return Ok(true);
            }
            let out = membership.last_output(&word)?;
            Ok(out == expected)
        };

    // Invariant: check(lo) = false, check(hi) = true.
    let mut lo = 0usize;
    let mut hi = counterexample.len() - 1;
    if check(membership, hi)? {
        // Binary search between lo and hi.
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if check(membership, mid)? {
                hi = mid;
            } else {
                lo = mid;
            }
        }
    } else {
        // The flip happens at the very last position: the distinguishing
        // suffix is the last symbol alone.
        lo = counterexample.len() - 1;
    }
    let suffix = counterexample[lo + 1..].to_vec();
    if suffix.is_empty() {
        // Fall back to the full last symbol (can only happen for length-1
        // counterexamples, where the single symbol must already distinguish).
        Ok(vec![counterexample[counterexample.len() - 1].clone()])
    } else {
        Ok(suffix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equivalence::{RandomWalkOracle, WMethodOracle, WpMethodOracle};
    use crate::oracle::{CachedOracle, MealyOracle};
    use automata::{equivalent, MealyBuilder};

    fn counter(n: usize) -> Mealy<&'static str, bool> {
        let mut b = MealyBuilder::new(vec!["t", "r"]);
        let states: Vec<_> = (0..n).map(|_| b.add_state()).collect();
        for i in 0..n {
            b.add_transition(states[i], "t", states[(i + 1) % n], i + 1 == n);
            b.add_transition(states[i], "r", states[0], false);
        }
        b.build(states[0]).unwrap()
    }

    fn learn(
        target: &Mealy<&'static str, bool>,
        depth: usize,
    ) -> (Mealy<&'static str, bool>, LearnStats) {
        let mut teacher = CachedOracle::new(MealyOracle::new(target.clone()));
        let mut eq = WpMethodOracle::new(depth);
        learn_mealy(
            target.inputs().to_vec(),
            &mut teacher,
            &mut eq,
            LearnOptions::default(),
        )
        .unwrap()
    }

    #[test]
    fn learns_small_counters_exactly() {
        // The wrap-only counter needs a conformance depth of n - 1 to be
        // distinguishable from smaller hypotheses (Theorem 3.3), so the test
        // passes the counter size as the suite depth.
        for n in [1, 2, 3, 5, 6] {
            let target = counter(n);
            let (learned, stats) = learn(&target, n);
            assert!(equivalent(&learned, &target), "counter({n}) mislearned");
            assert_eq!(learned.num_states(), n);
            assert_eq!(stats.states, n);
            assert!(stats.membership_queries > 0);
        }
    }

    #[test]
    fn learns_with_the_w_method_too() {
        let target = counter(4);
        let mut teacher = MealyOracle::new(target.clone());
        let mut eq = WMethodOracle::new(4);
        let (learned, _) = learn_mealy(
            target.inputs().to_vec(),
            &mut teacher,
            &mut eq,
            LearnOptions::default(),
        )
        .unwrap();
        assert!(equivalent(&learned, &target));
    }

    #[test]
    fn random_walk_oracle_learns_with_high_probability() {
        let target = counter(5);
        let mut teacher = MealyOracle::new(target.clone());
        let mut eq = RandomWalkOracle::new(2000, 20, 7);
        let (learned, _) = learn_mealy(
            target.inputs().to_vec(),
            &mut teacher,
            &mut eq,
            LearnOptions::default(),
        )
        .unwrap();
        assert!(equivalent(&learned, &target));
    }

    #[test]
    fn state_limit_is_enforced() {
        let target = counter(10);
        let mut teacher = MealyOracle::new(target.clone());
        let mut eq = WpMethodOracle::new(10);
        let result = learn_mealy(
            target.inputs().to_vec(),
            &mut teacher,
            &mut eq,
            LearnOptions {
                max_states: 4,
                time_budget: None,
            },
        );
        assert!(matches!(result, Err(LearnError::StateLimitExceeded(4))));
    }

    #[test]
    fn stats_reflect_the_run() {
        let target = counter(6);
        let (_, stats) = learn(&target, 6);
        assert!(stats.counterexamples >= 1);
        assert!(stats.equivalence_queries >= stats.counterexamples);
        assert!(stats.suffixes >= 2);
        assert!(stats.duration > Duration::ZERO);
    }
}
