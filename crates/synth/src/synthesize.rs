//! The staged enumerative synthesizer.

use std::time::{Duration, Instant};

use automata::check_equivalence;
use policies::{
    policy_to_mealy, PolicyInput, PolicyKind, PolicyMealy, PolicyOutput, ReplacementPolicy,
};

use crate::ast::{
    AgeExpr, EvictRule, Guard, InsertRule, NormalizeOp, NormalizeRule, PolicyProgram, PromoteRule,
    RuleCase, Template,
};
use crate::enumerate::{
    evict_rules, initial_age_vectors, insert_rules, miss_normalize_rules, single_case_promotes,
    two_case_promotes,
};
use crate::exec::ProgramPolicy;

/// Configuration of the synthesis search.
#[derive(Debug, Clone)]
pub struct SynthesisConfig {
    /// Maximum age value (the paper uses 4 age values, i.e. `max_age = 3`).
    pub max_age: u8,
    /// Try the Simple template before the Extended one (as in §8.1).
    pub try_simple_first: bool,
    /// Upper bound on the number of phase-A survivors carried into phase B.
    pub max_phase_a_survivors: usize,
    /// Abort the search after this much wall-clock time.
    pub time_budget: Option<Duration>,
}

impl Default for SynthesisConfig {
    fn default() -> Self {
        SynthesisConfig {
            max_age: 3,
            try_simple_first: true,
            max_phase_a_survivors: 100_000,
            time_budget: None,
        }
    }
}

/// Statistics of a synthesis run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SynthesisStats {
    /// Candidates evaluated in the eviction-only phase.
    pub phase_a_candidates: u64,
    /// Candidates that survived the eviction-only phase.
    pub phase_a_survivors: u64,
    /// Full candidates evaluated in phase B.
    pub phase_b_candidates: u64,
    /// Candidates that reached the full equivalence check.
    pub equivalence_checks: u64,
    /// Wall-clock time of the search.
    pub duration: Duration,
}

/// A successful synthesis.
#[derive(Debug, Clone)]
pub struct SynthesisResult {
    /// The synthesized explanation, trace-equivalent to the learned machine.
    pub program: PolicyProgram,
    /// The template flavour the program belongs to.
    pub template: Template,
    /// Search statistics.
    pub stats: SynthesisStats,
}

/// Eviction-only test words (exercise the evict/insert/normalize rules and
/// the initial state, but never the promotion rule).
fn eviction_words(assoc: usize) -> Vec<Vec<PolicyInput>> {
    (1..=2 * assoc + 4)
        .map(|k| vec![PolicyInput::Evct; k])
        .collect()
}

/// Mixed test words exercising promotion interleaved with evictions.
fn mixed_words(assoc: usize) -> Vec<Vec<PolicyInput>> {
    let mut words = Vec::new();
    let prefixes: Vec<Vec<PolicyInput>> = vec![
        vec![],
        vec![PolicyInput::Evct],
        vec![PolicyInput::Evct, PolicyInput::Evct],
        vec![PolicyInput::Evct; assoc],
    ];
    for prefix in &prefixes {
        for i in 0..assoc {
            for j in 0..assoc {
                let mut word = prefix.clone();
                word.push(PolicyInput::line(i));
                if i != j {
                    word.push(PolicyInput::line(j));
                }
                word.push(PolicyInput::line(i));
                word.extend(vec![PolicyInput::Evct; assoc + 1]);
                words.push(word);
            }
        }
    }
    // Repeated hit/evict alternation catches promotion/normalization timing.
    for i in 0..assoc {
        let mut word = Vec::new();
        for _ in 0..assoc + 2 {
            word.push(PolicyInput::line(i));
            word.push(PolicyInput::Evct);
        }
        words.push(word);
    }
    words
}

/// Expected outputs of `machine` for each word.
fn expected_outputs(machine: &PolicyMealy, words: &[Vec<PolicyInput>]) -> Vec<Vec<PolicyOutput>> {
    words
        .iter()
        .map(|w| machine.output_word(w.iter()))
        .collect()
}

/// Runs `program` on `word`, comparing against `expected`, aborting at the
/// first difference.
fn program_matches(
    program: &PolicyProgram,
    word: &[PolicyInput],
    expected: &[PolicyOutput],
) -> bool {
    let mut policy = ProgramPolicy::new(program.clone());
    for (input, exp) in word.iter().zip(expected) {
        let out = policy.apply(*input);
        if out != *exp {
            return false;
        }
    }
    true
}

fn empty_promote() -> PromoteRule {
    PromoteRule {
        self_cases: Vec::new(),
        others: None,
    }
}

/// Synthesizes an explanation for the learned policy automaton `learned` of
/// the given associativity, or returns `None` if the template space contains
/// no equivalent program (e.g. for tree-based PLRU, cf. §8.2).
pub fn synthesize(
    learned: &PolicyMealy,
    associativity: usize,
    config: &SynthesisConfig,
) -> Option<SynthesisResult> {
    let start = Instant::now();
    let mut stats = SynthesisStats::default();

    let templates: &[bool] = if config.try_simple_first {
        &[false, true] // extended = false first (Simple), then Extended
    } else {
        &[true]
    };

    let evict_words = eviction_words(associativity);
    let evict_expected = expected_outputs(learned, &evict_words);
    let mix_words = mixed_words(associativity);
    let mix_expected = expected_outputs(learned, &mix_words);
    let state_bound = (config.max_age as usize + 1).pow(associativity as u32) + 1;

    for &extended in templates {
        if let Some(result) = synthesize_with_template(
            learned,
            associativity,
            config,
            extended,
            &evict_words,
            &evict_expected,
            &mix_words,
            &mix_expected,
            state_bound,
            start,
            &mut stats,
        ) {
            return Some(result);
        }
        if exceeded(config, start) {
            break;
        }
    }
    None
}

fn exceeded(config: &SynthesisConfig, start: Instant) -> bool {
    config
        .time_budget
        .is_some_and(|budget| start.elapsed() > budget)
}

#[allow(clippy::too_many_arguments)]
fn synthesize_with_template(
    learned: &PolicyMealy,
    associativity: usize,
    config: &SynthesisConfig,
    extended: bool,
    evict_words: &[Vec<PolicyInput>],
    evict_expected: &[Vec<PolicyOutput>],
    mix_words: &[Vec<PolicyInput>],
    mix_expected: &[Vec<PolicyOutput>],
    state_bound: usize,
    start: Instant,
    stats: &mut SynthesisStats,
) -> Option<SynthesisResult> {
    let max_age = config.max_age;

    // Phase A: fix everything the eviction-only traces can observe.
    let mut survivors: Vec<PolicyProgram> = Vec::new();
    'phase_a: for initial in initial_age_vectors(associativity, max_age) {
        for evict in evict_rules(max_age) {
            for normalize in miss_normalize_rules(max_age, extended) {
                for insert in insert_rules(max_age) {
                    stats.phase_a_candidates += 1;
                    let candidate = PolicyProgram {
                        associativity,
                        max_age,
                        initial_ages: initial.clone(),
                        promote: empty_promote(),
                        evict,
                        insert: insert.clone(),
                        normalize,
                    };
                    if evict_words
                        .iter()
                        .zip(evict_expected)
                        .all(|(w, e)| program_matches(&candidate, w, e))
                    {
                        survivors.push(candidate);
                        if survivors.len() >= config.max_phase_a_survivors {
                            break 'phase_a;
                        }
                    }
                }
            }
            if exceeded(config, start) {
                break 'phase_a;
            }
        }
    }
    stats.phase_a_survivors += survivors.len() as u64;

    // Phase B: complete each survivor with a promotion rule (and possibly
    // hit-site normalization) and verify.
    let mut promotes = single_case_promotes(max_age);
    if extended {
        promotes.extend(two_case_promotes(max_age));
    }

    for survivor in &survivors {
        for promote in &promotes {
            let hit_norm_options: &[bool] = if survivor.normalize.op.is_some() {
                &[false, true]
            } else {
                &[false]
            };
            for &after_hit in hit_norm_options {
                if exceeded(config, start) {
                    return None;
                }
                stats.phase_b_candidates += 1;
                let mut candidate = survivor.clone();
                candidate.promote = promote.clone();
                candidate.normalize.after_hit = after_hit;

                if !mix_words
                    .iter()
                    .zip(mix_expected)
                    .all(|(w, e)| program_matches(&candidate, w, e))
                {
                    continue;
                }
                stats.equivalence_checks += 1;
                let policy = ProgramPolicy::new(candidate.clone());
                let machine = policy_to_mealy(&policy, state_bound);
                if check_equivalence(&machine, learned).is_none() {
                    stats.duration = start.elapsed();
                    let template = candidate.template();
                    return Some(SynthesisResult {
                        program: candidate,
                        template,
                        stats: *stats,
                    });
                }
            }
        }
    }
    stats.duration = start.elapsed();
    None
}

/// Hand-written reference explanations for the policies of §8 (everything in
/// Table 5 except PLRU, which the template cannot express).  These are used
/// by tests and by the benchmark harness to cross-check synthesized programs.
pub fn reference_program(kind: PolicyKind, associativity: usize) -> Option<PolicyProgram> {
    let max_age = 3u8;
    let assoc = associativity;
    let case = |guard, expr| RuleCase { guard, expr };
    let program = match kind {
        PolicyKind::Fifo => PolicyProgram {
            associativity: assoc,
            max_age,
            initial_ages: (0..assoc).rev().map(|a| a as u8).collect(),
            promote: empty_promote(),
            evict: EvictRule::FirstWithMaxAge,
            insert: InsertRule {
                self_age: 0,
                others: Some(case(Guard::Always, AgeExpr::Inc)),
            },
            normalize: NormalizeRule::identity(),
        },
        PolicyKind::Lru | PolicyKind::Lip => PolicyProgram {
            associativity: assoc,
            max_age,
            initial_ages: (0..assoc).rev().map(|a| a as u8).collect(),
            promote: PromoteRule {
                self_cases: vec![case(Guard::Always, AgeExpr::Const(0))],
                others: Some(case(Guard::LtTouched, AgeExpr::Inc)),
            },
            evict: EvictRule::FirstWithMaxAge,
            insert: if kind == PolicyKind::Lru {
                InsertRule {
                    self_age: 0,
                    others: Some(case(Guard::LtTouched, AgeExpr::Inc)),
                }
            } else {
                InsertRule {
                    self_age: max_age.min((assoc - 1) as u8),
                    others: None,
                }
            },
            normalize: NormalizeRule::identity(),
        },
        PolicyKind::Mru => PolicyProgram {
            associativity: assoc,
            max_age,
            initial_ages: {
                let mut v = vec![0; assoc];
                v[assoc - 1] = 1;
                v
            },
            promote: PromoteRule {
                self_cases: vec![case(Guard::Always, AgeExpr::Const(1))],
                others: None,
            },
            evict: EvictRule::FirstWithAge(0),
            insert: InsertRule {
                self_age: 1,
                others: None,
            },
            normalize: NormalizeRule {
                op: Some(NormalizeOp::ResetOthersWhenAllEqual {
                    value: 1,
                    reset_to: 0,
                }),
                after_hit: true,
                before_miss: false,
                after_miss: true,
            },
        },
        PolicyKind::SrripHp | PolicyKind::SrripFp => PolicyProgram {
            associativity: assoc,
            max_age,
            initial_ages: vec![max_age; assoc],
            promote: PromoteRule {
                self_cases: vec![if kind == PolicyKind::SrripHp {
                    case(Guard::Always, AgeExpr::Const(0))
                } else {
                    case(Guard::Always, AgeExpr::Dec)
                }],
                others: None,
            },
            evict: EvictRule::FirstWithAge(max_age),
            insert: InsertRule {
                self_age: 2,
                others: None,
            },
            normalize: NormalizeRule {
                op: Some(NormalizeOp::AgeUpWhileNoMax {
                    except_touched: false,
                }),
                after_hit: false,
                before_miss: true,
                after_miss: false,
            },
        },
        PolicyKind::New1 => PolicyProgram {
            associativity: assoc,
            max_age,
            initial_ages: {
                let mut v = vec![max_age; assoc];
                v[assoc - 1] = 0;
                v
            },
            promote: PromoteRule {
                self_cases: vec![case(Guard::Always, AgeExpr::Const(0))],
                others: None,
            },
            evict: EvictRule::FirstWithAge(max_age),
            insert: InsertRule {
                self_age: 1,
                others: None,
            },
            normalize: NormalizeRule {
                op: Some(NormalizeOp::AgeUpWhileNoMax {
                    except_touched: true,
                }),
                after_hit: true,
                before_miss: false,
                after_miss: true,
            },
        },
        PolicyKind::New2 => PolicyProgram {
            associativity: assoc,
            max_age,
            initial_ages: vec![max_age; assoc],
            promote: PromoteRule {
                self_cases: vec![
                    case(Guard::AgeEq(1), AgeExpr::Const(0)),
                    case(Guard::AgeGt(1), AgeExpr::Const(1)),
                ],
                others: None,
            },
            evict: EvictRule::FirstWithAge(max_age),
            insert: InsertRule {
                self_age: 1,
                others: None,
            },
            normalize: NormalizeRule {
                op: Some(NormalizeOp::AgeUpWhileNoMax {
                    except_touched: false,
                }),
                after_hit: true,
                before_miss: false,
                after_miss: true,
            },
        },
        PolicyKind::Plru | PolicyKind::Brrip => return None,
    };
    Some(program)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn learned(kind: PolicyKind, assoc: usize) -> PolicyMealy {
        policy_to_mealy(kind.build(assoc).unwrap().as_ref(), 1 << 16)
    }

    #[test]
    fn reference_programs_match_their_policies() {
        for kind in [
            PolicyKind::Fifo,
            PolicyKind::Lru,
            PolicyKind::Lip,
            PolicyKind::Mru,
            PolicyKind::SrripHp,
            PolicyKind::SrripFp,
            PolicyKind::New1,
            PolicyKind::New2,
        ] {
            let program = reference_program(kind, 4).unwrap();
            let machine = policy_to_mealy(&ProgramPolicy::new(program), 1 << 16);
            assert!(
                check_equivalence(&machine, &learned(kind, 4)).is_none(),
                "reference explanation for {kind} is wrong"
            );
        }
    }

    #[test]
    fn plru_has_no_reference_program() {
        assert!(reference_program(PolicyKind::Plru, 4).is_none());
    }

    #[test]
    fn synthesizes_fifo_at_assoc_2_with_the_simple_template() {
        // FIFO at associativity 2 only needs ages 0..1; shrinking the age
        // bound keeps the exhaustive search fast enough for a unit test.
        let config = SynthesisConfig {
            max_age: 1,
            ..SynthesisConfig::default()
        };
        let result = synthesize(&learned(PolicyKind::Fifo, 2), 2, &config)
            .expect("FIFO must be synthesizable");
        assert_eq!(result.template, Template::Simple);
        assert!(result.stats.phase_a_candidates > 0);
    }

    #[test]
    fn synthesizes_lru_at_assoc_3() {
        let config = SynthesisConfig {
            max_age: 2,
            ..SynthesisConfig::default()
        };
        let result = synthesize(&learned(PolicyKind::Lru, 3), 3, &config)
            .expect("LRU must be synthesizable");
        assert_eq!(result.template, Template::Simple);
        // Verify end to end: the synthesized program is equivalent to LRU.
        let machine = policy_to_mealy(&ProgramPolicy::new(result.program), 1 << 16);
        assert!(check_equivalence(&machine, &learned(PolicyKind::Lru, 3)).is_none());
    }

    #[test]
    fn synthesizes_mru_at_assoc_2() {
        // At associativity 2 the MRU-bit policy degenerates to LRU, so the
        // Simple template suffices; the Extended classification of MRU at
        // associativity 4 (Table 5) is exercised by the benchmark harness and
        // the integration tests.
        let config = SynthesisConfig {
            max_age: 1,
            ..SynthesisConfig::default()
        };
        let result = synthesize(&learned(PolicyKind::Mru, 2), 2, &config)
            .expect("MRU must be synthesizable");
        let machine = policy_to_mealy(&ProgramPolicy::new(result.program), 1 << 16);
        assert!(check_equivalence(&machine, &learned(PolicyKind::Mru, 2)).is_none());
    }

    #[test]
    fn plru_at_assoc_4_is_not_synthesizable() {
        // Tree-based PLRU has a global control state that the per-line age
        // template cannot express (§8.2, point 3).
        let config = SynthesisConfig {
            max_phase_a_survivors: 20_000,
            time_budget: Some(Duration::from_secs(5)),
            ..SynthesisConfig::default()
        };
        assert!(synthesize(&learned(PolicyKind::Plru, 4), 4, &config).is_none());
    }

    #[test]
    fn time_budget_is_respected() {
        let config = SynthesisConfig {
            time_budget: Some(Duration::ZERO),
            ..SynthesisConfig::default()
        };
        // With a zero budget the search gives up without finding anything.
        assert!(synthesize(&learned(PolicyKind::Lru, 4), 4, &config).is_none());
    }
}
