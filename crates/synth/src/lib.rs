//! Template-based synthesis of human-readable policy explanations.
//!
//! Section 5 of the paper turns learned automata into small programs built
//! from four rules — *promotion* (what happens to the accessed line on a
//! hit), *eviction* (how the victim is selected), *insertion* (the age given
//! to the filled line) and *normalization* (how control-state invariants are
//! restored) — over per-line ages.  The original implementation encodes the
//! template in Sketch and asks a SyGuS solver for an instantiation that
//! matches the learned automaton; this reproduction performs a staged
//! enumerative search over the same rule space and verifies candidates by
//! building their induced Mealy machine and checking trace equivalence
//! against the learned automaton, which gives the same end-to-end guarantee
//! (a returned program behaves exactly like the learned policy).
//!
//! Like the paper, two template flavours exist: the *Simple* template fixes
//! normalization to the identity and restricts rules to a single case, the
//! *Extended* template adds normalization and two-case promotion (§8.1,
//! Table 5).
//!
//! # Example
//!
//! ```
//! use policies::{policy_to_mealy, PolicyKind};
//! use synth::{synthesize, SynthesisConfig};
//!
//! let learned = policy_to_mealy(PolicyKind::Fifo.build(4).unwrap().as_ref(), 1 << 16);
//! let result = synthesize(&learned, 4, &SynthesisConfig::default()).expect("FIFO is explainable");
//! assert_eq!(result.template, synth::Template::Simple);
//! println!("{}", result.program);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod enumerate;
mod exec;
mod synthesize;

pub use ast::{
    AgeExpr, EvictRule, Guard, InsertRule, NormalizeOp, NormalizeRule, PolicyProgram, PromoteRule,
    RuleCase, Template,
};
pub use exec::ProgramPolicy;
pub use synthesize::{
    reference_program, synthesize, SynthesisConfig, SynthesisResult, SynthesisStats,
};
