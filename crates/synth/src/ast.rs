//! The abstract syntax of policy explanations (the template language of §5).

use std::fmt;

/// Which template flavour a program fits in (Table 5's "Template" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Template {
    /// Normalization fixed to the identity, single-case rules, expressions
    /// over constants and the line's own age only.
    Simple,
    /// Full template: normalization rules, two-case promotion, expressions
    /// that may refer to the accessed line's age.
    Extended,
}

impl fmt::Display for Template {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Template::Simple => write!(f, "Simple"),
            Template::Extended => write!(f, "Extended"),
        }
    }
}

/// A guard over ages, evaluated against a line's age (and, where applicable,
/// the age of the line being promoted/inserted).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Guard {
    /// Always true.
    Always,
    /// The age equals the constant.
    AgeEq(u8),
    /// The age is strictly less than the constant.
    AgeLt(u8),
    /// The age is strictly greater than the constant.
    AgeGt(u8),
    /// The age is strictly less than the touched line's (pre-update) age.
    LtTouched,
    /// The age is strictly greater than the touched line's (pre-update) age.
    GtTouched,
    /// The age equals the touched line's (pre-update) age.
    EqTouched,
}

impl Guard {
    /// Evaluates the guard for a line of age `age`, where `touched` is the
    /// pre-update age of the accessed/inserted line.
    pub fn eval(self, age: u8, touched: u8) -> bool {
        match self {
            Guard::Always => true,
            Guard::AgeEq(k) => age == k,
            Guard::AgeLt(k) => age < k,
            Guard::AgeGt(k) => age > k,
            Guard::LtTouched => age < touched,
            Guard::GtTouched => age > touched,
            Guard::EqTouched => age == touched,
        }
    }

    /// Whether the guard refers to the touched line's age (Extended-only in
    /// the Simple/Extended classification).
    pub fn refers_to_touched(self) -> bool {
        matches!(self, Guard::LtTouched | Guard::GtTouched | Guard::EqTouched)
    }
}

impl fmt::Display for Guard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Guard::Always => write!(f, "true"),
            Guard::AgeEq(k) => write!(f, "age == {k}"),
            Guard::AgeLt(k) => write!(f, "age < {k}"),
            Guard::AgeGt(k) => write!(f, "age > {k}"),
            Guard::LtTouched => write!(f, "age < age[pos]"),
            Guard::GtTouched => write!(f, "age > age[pos]"),
            Guard::EqTouched => write!(f, "age == age[pos]"),
        }
    }
}

/// An age-update expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AgeExpr {
    /// Keep the age unchanged.
    Keep,
    /// Set the age to a constant.
    Const(u8),
    /// Increment the age, saturating at the maximum age.
    Inc,
    /// Decrement the age, saturating at zero.
    Dec,
}

impl AgeExpr {
    /// Evaluates the expression on `age` with the given maximum age.
    pub fn eval(self, age: u8, max_age: u8) -> u8 {
        match self {
            AgeExpr::Keep => age,
            AgeExpr::Const(k) => k.min(max_age),
            AgeExpr::Inc => (age + 1).min(max_age),
            AgeExpr::Dec => age.saturating_sub(1),
        }
    }
}

impl fmt::Display for AgeExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AgeExpr::Keep => write!(f, "age"),
            AgeExpr::Const(k) => write!(f, "{k}"),
            AgeExpr::Inc => write!(f, "age + 1"),
            AgeExpr::Dec => write!(f, "age - 1"),
        }
    }
}

/// One guarded update case (`if guard then age := expr`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RuleCase {
    /// Condition on the (pre-update) age.
    pub guard: Guard,
    /// Update applied when the guard holds.
    pub expr: AgeExpr,
}

impl fmt::Display for RuleCase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "if {} then age := {}", self.guard, self.expr)
    }
}

/// The promotion rule: how a cache hit updates the control state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PromoteRule {
    /// Guarded update cases for the accessed line, evaluated in order
    /// (first match wins); if no case matches the age is kept.
    pub self_cases: Vec<RuleCase>,
    /// Optional guarded update of every other line (the guard compares the
    /// other line's age with the accessed line's pre-update age).
    pub others: Option<RuleCase>,
}

/// The eviction rule: how the victim line is selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EvictRule {
    /// The left-most line whose age equals the constant; if no line matches,
    /// the left-most line with the maximum age is used as a fallback.
    FirstWithAge(u8),
    /// The left-most line holding the maximum age currently present.
    FirstWithMaxAge,
    /// The left-most line holding the minimum age currently present.
    FirstWithMinAge,
}

impl fmt::Display for EvictRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvictRule::FirstWithAge(k) => {
                write!(f, "first line (from the left) with age == {k}")
            }
            EvictRule::FirstWithMaxAge => {
                write!(f, "first line (from the left) with the largest age")
            }
            EvictRule::FirstWithMinAge => {
                write!(f, "first line (from the left) with the smallest age")
            }
        }
    }
}

/// The insertion rule: how a miss updates the control state after the victim
/// has been chosen.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct InsertRule {
    /// Age assigned to the inserted line.
    pub self_age: u8,
    /// Optional guarded update of every other line (guard compares with the
    /// victim's pre-insertion age).
    pub others: Option<RuleCase>,
}

/// A normalization operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NormalizeOp {
    /// While no line has the maximum age, increment the age of every line
    /// (optionally except the just accessed/inserted one).
    AgeUpWhileNoMax {
        /// Whether the touched line is exempt from the increments.
        except_touched: bool,
    },
    /// If every line has age `value`, set all lines except the touched one to
    /// `reset_to` (the MRU-bit style normalization).
    ResetOthersWhenAllEqual {
        /// The age value that triggers the reset.
        value: u8,
        /// The age the other lines are reset to.
        reset_to: u8,
    },
}

impl fmt::Display for NormalizeOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NormalizeOp::AgeUpWhileNoMax { except_touched } => {
                if *except_touched {
                    write!(
                        f,
                        "while no line has the maximum age, increment every other line's age"
                    )
                } else {
                    write!(
                        f,
                        "while no line has the maximum age, increment every line's age"
                    )
                }
            }
            NormalizeOp::ResetOthersWhenAllEqual { value, reset_to } => write!(
                f,
                "if every line has age {value}, set every other line's age to {reset_to}"
            ),
        }
    }
}

/// Where and how the control state is normalized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NormalizeRule {
    /// The operation (`None` = identity, the Simple template).
    pub op: Option<NormalizeOp>,
    /// Apply after a hit.
    pub after_hit: bool,
    /// Apply before selecting the victim of a miss.
    pub before_miss: bool,
    /// Apply after the insertion of a miss.
    pub after_miss: bool,
}

impl NormalizeRule {
    /// The identity normalization (Simple template).
    pub fn identity() -> Self {
        NormalizeRule {
            op: None,
            after_hit: false,
            before_miss: false,
            after_miss: false,
        }
    }
}

/// A complete synthesized policy explanation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PolicyProgram {
    /// Number of cache lines.
    pub associativity: usize,
    /// Maximum age value (3 in all of the paper's experiments).
    pub max_age: u8,
    /// Initial per-line ages (the `s0` hole of the template).
    pub initial_ages: Vec<u8>,
    /// Promotion rule.
    pub promote: PromoteRule,
    /// Eviction rule.
    pub evict: EvictRule,
    /// Insertion rule.
    pub insert: InsertRule,
    /// Normalization rule.
    pub normalize: NormalizeRule,
}

impl PolicyProgram {
    /// Which template flavour this program belongs to: Simple iff
    /// normalization is the identity and promotion needs a single case.
    pub fn template(&self) -> Template {
        if self.normalize.op.is_none() && self.promote.self_cases.len() <= 1 {
            Template::Simple
        } else {
            Template::Extended
        }
    }
}

impl fmt::Display for PolicyProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "policy explanation (associativity {}, ages 0..={}):",
            self.associativity, self.max_age
        )?;
        writeln!(f, "  initial control state: {:?}", self.initial_ages)?;
        writeln!(f, "  promote (on a hit to line pos):")?;
        if self.promote.self_cases.is_empty() {
            writeln!(f, "    leave the accessed line's age unchanged")?;
        }
        for case in &self.promote.self_cases {
            writeln!(f, "    {case}")?;
        }
        if let Some(case) = &self.promote.others {
            writeln!(f, "    for every other line: {case}")?;
        }
        writeln!(f, "  evict: {}", self.evict)?;
        writeln!(
            f,
            "  insert: set the filled line's age to {}",
            self.insert.self_age
        )?;
        if let Some(case) = &self.insert.others {
            writeln!(f, "    for every other line: {case}")?;
        }
        match self.normalize.op {
            None => writeln!(f, "  normalize: identity")?,
            Some(op) => {
                let mut sites = Vec::new();
                if self.normalize.after_hit {
                    sites.push("after a hit");
                }
                if self.normalize.before_miss {
                    sites.push("before a miss");
                }
                if self.normalize.after_miss {
                    sites.push("after a miss");
                }
                writeln!(f, "  normalize ({}): {}", sites.join(", "), op)?;
            }
        }
        write!(f, "  template: {}", self.template())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lru_program() -> PolicyProgram {
        PolicyProgram {
            associativity: 4,
            max_age: 3,
            initial_ages: vec![3, 2, 1, 0],
            promote: PromoteRule {
                self_cases: vec![RuleCase {
                    guard: Guard::Always,
                    expr: AgeExpr::Const(0),
                }],
                others: Some(RuleCase {
                    guard: Guard::LtTouched,
                    expr: AgeExpr::Inc,
                }),
            },
            evict: EvictRule::FirstWithMaxAge,
            insert: InsertRule {
                self_age: 0,
                others: Some(RuleCase {
                    guard: Guard::LtTouched,
                    expr: AgeExpr::Inc,
                }),
            },
            normalize: NormalizeRule::identity(),
        }
    }

    #[test]
    fn guards_and_expressions_evaluate() {
        assert!(Guard::Always.eval(2, 0));
        assert!(Guard::AgeEq(2).eval(2, 0));
        assert!(!Guard::AgeEq(2).eval(1, 0));
        assert!(Guard::LtTouched.eval(1, 2));
        assert!(!Guard::GtTouched.eval(1, 2));
        assert_eq!(AgeExpr::Inc.eval(3, 3), 3);
        assert_eq!(AgeExpr::Dec.eval(0, 3), 0);
        assert_eq!(AgeExpr::Const(7).eval(0, 3), 3);
        assert_eq!(AgeExpr::Keep.eval(2, 3), 2);
    }

    #[test]
    fn template_classification() {
        let mut program = lru_program();
        // LRU's others-guard refers to the touched line, but normalization is
        // the identity and promotion has one case: the paper classifies LRU
        // under the Simple template, and so do we.
        assert_eq!(program.template(), Template::Simple);
        program.normalize = NormalizeRule {
            op: Some(NormalizeOp::AgeUpWhileNoMax {
                except_touched: false,
            }),
            after_hit: true,
            before_miss: false,
            after_miss: true,
        };
        assert_eq!(program.template(), Template::Extended);
    }

    #[test]
    fn display_is_human_readable() {
        let text = lru_program().to_string();
        assert!(text.contains("initial control state"));
        assert!(text.contains("evict: first line"));
        assert!(text.contains("template: Simple"));
    }
}
