//! Executing synthesized programs as replacement policies.
//!
//! Making [`PolicyProgram`] implement [`ReplacementPolicy`] gives the
//! verification path of the synthesizer for free: a candidate program is
//! converted into its induced Mealy machine with [`policies::policy_to_mealy`]
//! and compared against the learned automaton, which is exactly the
//! correctness condition of §5 ("the solver's soundness, the template's
//! determinism, and the constraint φP ensure that the program behaves exactly
//! as the learned policy").

use policies::ReplacementPolicy;

use crate::ast::{NormalizeOp, PolicyProgram, PromoteRule, RuleCase};

/// A running instance of a synthesized program: the program plus its current
/// per-line ages.
#[derive(Debug, Clone)]
pub struct ProgramPolicy {
    program: PolicyProgram,
    ages: Vec<u8>,
}

impl ProgramPolicy {
    /// Instantiates the program in its initial control state.
    pub fn new(program: PolicyProgram) -> Self {
        let ages = program.initial_ages.clone();
        ProgramPolicy { program, ages }
    }

    /// The underlying program.
    pub fn program(&self) -> &PolicyProgram {
        &self.program
    }

    fn apply_cases(cases: &[RuleCase], age: u8, max_age: u8) -> u8 {
        for case in cases {
            if case.guard.eval(age, age) {
                return case.expr.eval(age, max_age);
            }
        }
        age
    }

    fn apply_others(
        ages: &mut [u8],
        rule: &Option<RuleCase>,
        touched: usize,
        touched_old: u8,
        max_age: u8,
    ) {
        if let Some(case) = rule {
            for (i, age) in ages.iter_mut().enumerate() {
                if i != touched && case.guard.eval(*age, touched_old) {
                    *age = case.expr.eval(*age, max_age);
                }
            }
        }
    }

    fn normalize(&mut self, touched: Option<usize>) {
        let Some(op) = self.program.normalize.op else {
            return;
        };
        let max_age = self.program.max_age;
        match op {
            NormalizeOp::AgeUpWhileNoMax { except_touched } => loop {
                if self.ages.contains(&max_age) {
                    break;
                }
                let mut changed = false;
                for (i, age) in self.ages.iter_mut().enumerate() {
                    let exempt = except_touched && Some(i) == touched;
                    if !exempt && *age < max_age {
                        *age += 1;
                        changed = true;
                    }
                }
                if !changed {
                    break;
                }
            },
            NormalizeOp::ResetOthersWhenAllEqual { value, reset_to } => {
                if self.ages.iter().all(|&a| a == value) {
                    for (i, age) in self.ages.iter_mut().enumerate() {
                        if Some(i) != touched {
                            *age = reset_to.min(max_age);
                        }
                    }
                }
            }
        }
    }

    fn promote(&mut self, line: usize) {
        let PromoteRule { self_cases, others } = self.program.promote.clone();
        let old = self.ages[line];
        let new_age = Self::apply_cases(&self_cases, old, self.program.max_age);
        Self::apply_others(&mut self.ages, &others, line, old, self.program.max_age);
        self.ages[line] = new_age;
    }
}

impl ReplacementPolicy for ProgramPolicy {
    fn associativity(&self) -> usize {
        self.program.associativity
    }

    fn on_hit(&mut self, line: usize) {
        assert!(line < self.ages.len(), "line index out of range");
        self.promote(line);
        if self.program.normalize.after_hit {
            self.normalize(Some(line));
        }
    }

    fn victim(&mut self) -> usize {
        if self.program.normalize.before_miss {
            self.normalize(None);
        }
        use crate::ast::EvictRule;
        match self.program.evict {
            EvictRule::FirstWithAge(k) => self
                .ages
                .iter()
                .position(|&a| a == k)
                .unwrap_or_else(|| first_extreme(&self.ages, true)),
            EvictRule::FirstWithMaxAge => first_extreme(&self.ages, true),
            EvictRule::FirstWithMinAge => first_extreme(&self.ages, false),
        }
    }

    fn on_insert(&mut self, line: usize) {
        assert!(line < self.ages.len(), "line index out of range");
        let old = self.ages[line];
        let insert = self.program.insert.clone();
        Self::apply_others(
            &mut self.ages,
            &insert.others,
            line,
            old,
            self.program.max_age,
        );
        self.ages[line] = insert.self_age.min(self.program.max_age);
        if self.program.normalize.after_miss {
            self.normalize(Some(line));
        }
    }

    fn reset(&mut self) {
        self.ages = self.program.initial_ages.clone();
    }

    fn state_key(&self) -> Vec<u32> {
        self.ages.iter().map(|&a| a as u32).collect()
    }

    fn name(&self) -> &'static str {
        "synthesized"
    }

    fn clone_box(&self) -> Box<dyn ReplacementPolicy> {
        Box::new(self.clone())
    }
}

fn first_extreme(ages: &[u8], max: bool) -> usize {
    let target = if max {
        *ages.iter().max().expect("at least one line")
    } else {
        *ages.iter().min().expect("at least one line")
    };
    ages.iter()
        .position(|&a| a == target)
        .expect("the extreme value is present")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{AgeExpr, EvictRule, Guard, InsertRule, NormalizeRule, PromoteRule, RuleCase};
    use automata::check_equivalence;
    use policies::{policy_to_mealy, PolicyKind};

    /// The LRU explanation written by hand; executing it must match the LRU
    /// implementation exactly.
    fn lru_program(assoc: usize) -> PolicyProgram {
        PolicyProgram {
            associativity: assoc,
            max_age: (assoc - 1) as u8,
            initial_ages: (0..assoc).rev().map(|a| a as u8).collect(),
            promote: PromoteRule {
                self_cases: vec![RuleCase {
                    guard: Guard::Always,
                    expr: AgeExpr::Const(0),
                }],
                others: Some(RuleCase {
                    guard: Guard::LtTouched,
                    expr: AgeExpr::Inc,
                }),
            },
            evict: EvictRule::FirstWithMaxAge,
            insert: InsertRule {
                self_age: 0,
                others: Some(RuleCase {
                    guard: Guard::LtTouched,
                    expr: AgeExpr::Inc,
                }),
            },
            normalize: NormalizeRule::identity(),
        }
    }

    /// The New2 explanation from Figure 5b.
    fn new2_program() -> PolicyProgram {
        PolicyProgram {
            associativity: 4,
            max_age: 3,
            initial_ages: vec![3, 3, 3, 3],
            promote: PromoteRule {
                self_cases: vec![
                    RuleCase {
                        guard: Guard::AgeEq(1),
                        expr: AgeExpr::Const(0),
                    },
                    RuleCase {
                        guard: Guard::AgeGt(1),
                        expr: AgeExpr::Const(1),
                    },
                ],
                others: None,
            },
            evict: EvictRule::FirstWithAge(3),
            insert: InsertRule {
                self_age: 1,
                others: None,
            },
            normalize: NormalizeRule {
                op: Some(NormalizeOp::AgeUpWhileNoMax {
                    except_touched: false,
                }),
                after_hit: true,
                before_miss: false,
                after_miss: true,
            },
        }
    }

    #[test]
    fn hand_written_lru_program_matches_lru() {
        let program = ProgramPolicy::new(lru_program(4));
        let machine = policy_to_mealy(&program, 1 << 16);
        let reference = policy_to_mealy(PolicyKind::Lru.build(4).unwrap().as_ref(), 1 << 16);
        assert!(check_equivalence(&machine, &reference).is_none());
    }

    #[test]
    fn figure_5b_new2_program_matches_new2() {
        let program = ProgramPolicy::new(new2_program());
        let machine = policy_to_mealy(&program, 1 << 16);
        let reference = policy_to_mealy(PolicyKind::New2.build(4).unwrap().as_ref(), 1 << 16);
        assert!(check_equivalence(&machine, &reference).is_none());
    }

    #[test]
    fn reset_restores_the_initial_ages() {
        let mut program = ProgramPolicy::new(new2_program());
        program.on_miss();
        program.on_hit(0);
        program.reset();
        assert_eq!(program.state_key(), vec![3, 3, 3, 3]);
    }

    #[test]
    fn evict_rule_falls_back_to_the_maximum() {
        // FirstWithAge(3) on a state without any 3 must still pick a victim.
        let mut program = lru_program(4);
        program.evict = EvictRule::FirstWithAge(3);
        program.initial_ages = vec![0, 2, 1, 0];
        let mut policy = ProgramPolicy::new(program);
        assert_eq!(policy.victim(), 1);
    }
}
