//! Enumeration of the template's rule space (the "generators" of §5).

use crate::ast::{
    AgeExpr, EvictRule, Guard, InsertRule, NormalizeOp, NormalizeRule, PromoteRule, RuleCase,
};

/// Guards available for the accessed line's own update.
pub fn self_guards(max_age: u8) -> Vec<Guard> {
    let mut guards = vec![Guard::Always];
    for k in 0..=max_age {
        guards.push(Guard::AgeEq(k));
    }
    for k in 1..=max_age {
        guards.push(Guard::AgeLt(k));
    }
    for k in 0..max_age {
        guards.push(Guard::AgeGt(k));
    }
    guards
}

/// Guards available for the "all other lines" updates (they may compare with
/// the touched line's age).
pub fn other_guards(max_age: u8) -> Vec<Guard> {
    let mut guards = self_guards(max_age);
    guards.extend([Guard::LtTouched, Guard::GtTouched, Guard::EqTouched]);
    guards
}

/// Age-update expressions.
pub fn age_exprs(max_age: u8) -> Vec<AgeExpr> {
    let mut exprs = vec![AgeExpr::Keep, AgeExpr::Inc, AgeExpr::Dec];
    for k in 0..=max_age {
        exprs.push(AgeExpr::Const(k));
    }
    exprs
}

/// Single guarded cases (guard × expression), excluding no-ops.
fn cases(guards: &[Guard], exprs: &[AgeExpr]) -> Vec<RuleCase> {
    let mut result = Vec::new();
    for &guard in guards {
        for &expr in exprs {
            if expr == AgeExpr::Keep {
                continue; // a Keep case is equivalent to omitting the case
            }
            result.push(RuleCase { guard, expr });
        }
    }
    result
}

/// Optional "update all other lines" components: `None` plus every case.
pub fn other_updates(max_age: u8) -> Vec<Option<RuleCase>> {
    let mut result = vec![None];
    result.extend(
        cases(&other_guards(max_age), &age_exprs(max_age))
            .into_iter()
            .map(Some),
    );
    result
}

/// Promotion rules with a single case (searched first; sufficient for every
/// policy of §8 except New2).
pub fn single_case_promotes(max_age: u8) -> Vec<PromoteRule> {
    let self_cases: Vec<Vec<RuleCase>> = std::iter::once(Vec::new())
        .chain(
            cases(&self_guards(max_age), &age_exprs(max_age))
                .into_iter()
                .map(|c| vec![c]),
        )
        .collect();
    let mut result = Vec::new();
    for self_case in &self_cases {
        for others in other_updates(max_age) {
            result.push(PromoteRule {
                self_cases: self_case.clone(),
                others,
            });
        }
    }
    result
}

/// Promotion rules with exactly two cases (Extended template; needed for
/// New2's two-step promotion).  To keep the space manageable the two-case
/// rules do not update other lines — none of the known two-case policies
/// needs both.
pub fn two_case_promotes(max_age: u8) -> Vec<PromoteRule> {
    let all_cases = cases(&self_guards(max_age), &age_exprs(max_age));
    let mut result = Vec::new();
    for first in &all_cases {
        // An unconditional first case shadows the second.
        if first.guard == Guard::Always {
            continue;
        }
        for second in &all_cases {
            result.push(PromoteRule {
                self_cases: vec![*first, *second],
                others: None,
            });
        }
    }
    result
}

/// Eviction rules.
pub fn evict_rules(max_age: u8) -> Vec<EvictRule> {
    let mut result = vec![EvictRule::FirstWithMaxAge, EvictRule::FirstWithMinAge];
    for k in 0..=max_age {
        result.push(EvictRule::FirstWithAge(k));
    }
    result
}

/// Insertion rules.
pub fn insert_rules(max_age: u8) -> Vec<InsertRule> {
    let mut result = Vec::new();
    for self_age in 0..=max_age {
        for others in other_updates(max_age) {
            result.push(InsertRule { self_age, others });
        }
    }
    result
}

/// Normalization rules for the given template flavour.
pub fn normalize_rules(max_age: u8, extended: bool) -> Vec<NormalizeRule> {
    if !extended {
        return vec![NormalizeRule::identity()];
    }
    let mut ops = vec![
        NormalizeOp::AgeUpWhileNoMax {
            except_touched: false,
        },
        NormalizeOp::AgeUpWhileNoMax {
            except_touched: true,
        },
    ];
    for value in 0..=max_age {
        for reset_to in 0..=max_age {
            if reset_to != value {
                ops.push(NormalizeOp::ResetOthersWhenAllEqual { value, reset_to });
            }
        }
    }
    let mut result = vec![NormalizeRule::identity()];
    for op in ops {
        for mask in 1..8u8 {
            result.push(NormalizeRule {
                op: Some(op),
                after_hit: mask & 1 != 0,
                before_miss: mask & 2 != 0,
                after_miss: mask & 4 != 0,
            });
        }
    }
    result
}

/// Normalization rules restricted to the miss path (used by the first search
/// phase, which only observes eviction-only traces).
pub fn miss_normalize_rules(max_age: u8, extended: bool) -> Vec<NormalizeRule> {
    normalize_rules(max_age, extended)
        .into_iter()
        .filter(|r| !r.after_hit)
        .collect()
}

/// All candidate initial age vectors for the given associativity, bounded by
/// `max_age`.
pub fn initial_age_vectors(associativity: usize, max_age: u8) -> Vec<Vec<u8>> {
    let mut result: Vec<Vec<u8>> = vec![Vec::new()];
    for _ in 0..associativity {
        let mut next = Vec::with_capacity(result.len() * (max_age as usize + 1));
        for prefix in &result {
            for age in 0..=max_age {
                let mut v = prefix.clone();
                v.push(age);
                next.push(v);
            }
        }
        result = next;
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumerations_have_expected_sizes() {
        // max_age = 3: 1 + 4 + 3 + 3 = 11 self guards, 14 other guards,
        // 3 + 4 = 7 expressions (6 without Keep).
        assert_eq!(self_guards(3).len(), 11);
        assert_eq!(other_guards(3).len(), 14);
        assert_eq!(age_exprs(3).len(), 7);
        assert_eq!(other_updates(3).len(), 1 + 14 * 6);
        assert_eq!(evict_rules(3).len(), 6);
        assert_eq!(insert_rules(3).len(), 4 * (1 + 14 * 6));
        assert_eq!(initial_age_vectors(2, 3).len(), 16);
        assert_eq!(initial_age_vectors(4, 1).len(), 16);
    }

    #[test]
    fn simple_normalization_is_identity_only() {
        assert_eq!(normalize_rules(3, false).len(), 1);
        assert!(normalize_rules(3, true).len() > 1);
        assert!(miss_normalize_rules(3, true).iter().all(|r| !r.after_hit));
    }

    #[test]
    fn two_case_promotes_skip_shadowed_cases() {
        assert!(two_case_promotes(3)
            .iter()
            .all(|p| p.self_cases[0].guard != Guard::Always));
    }

    #[test]
    fn promote_enumeration_contains_the_known_rules() {
        // LRU: self := 0 unconditionally, others < touched += 1.
        let lru = PromoteRule {
            self_cases: vec![RuleCase {
                guard: Guard::Always,
                expr: AgeExpr::Const(0),
            }],
            others: Some(RuleCase {
                guard: Guard::LtTouched,
                expr: AgeExpr::Inc,
            }),
        };
        assert!(single_case_promotes(3).contains(&lru));
        // New2: two-case promotion.
        let new2 = PromoteRule {
            self_cases: vec![
                RuleCase {
                    guard: Guard::AgeEq(1),
                    expr: AgeExpr::Const(0),
                },
                RuleCase {
                    guard: Guard::AgeGt(1),
                    expr: AgeExpr::Const(1),
                },
            ],
            others: None,
        };
        assert!(two_case_promotes(3).contains(&new2));
    }
}
