//! A complete cache level: all slices and sets of one level of the hierarchy.

use policies::ReplacementPolicy;

use crate::address::PhysAddr;
use crate::geometry::CacheGeometry;
use crate::set::{AccessResult, Block, CacheSet};

/// Static configuration of one cache level.
#[derive(Debug, Clone)]
pub struct LevelConfig {
    /// Human-readable name ("L1", "L2", "L3").
    pub name: String,
    /// Geometry of the level.
    pub geometry: CacheGeometry,
    /// Whether the level is inclusive of the levels above it (evictions
    /// back-invalidate the smaller caches).  The modelled Intel L3 caches are
    /// inclusive; L1 and L2 are not.
    pub inclusive: bool,
}

/// One cache level: a [`CacheSet`] per (slice, set) pair.
///
/// Blocks are stored by their line-aligned physical address, so the same
/// address always maps to the same set and compares equal across levels.
#[derive(Debug, Clone)]
pub struct CacheLevel {
    config: LevelConfig,
    sets: Vec<CacheSet>,
}

impl CacheLevel {
    /// Creates a level whose sets are governed by the policies produced by
    /// `make_policy`, which is called once per flat set index.
    ///
    /// # Panics
    ///
    /// Panics if a produced policy's associativity differs from the
    /// geometry's.
    pub fn new(
        config: LevelConfig,
        mut make_policy: impl FnMut(usize) -> Box<dyn ReplacementPolicy>,
    ) -> Self {
        let total = config.geometry.total_sets();
        let sets = (0..total)
            .map(|flat| {
                let policy = make_policy(flat);
                assert_eq!(
                    policy.associativity(),
                    config.geometry.associativity,
                    "policy associativity must match the geometry"
                );
                CacheSet::new(policy)
            })
            .collect();
        CacheLevel { config, sets }
    }

    /// The level's configuration.
    pub fn config(&self) -> &LevelConfig {
        &self.config
    }

    /// The level's geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.config.geometry
    }

    /// Converts an address to the block identifier stored in this level.
    fn block_of(&self, addr: PhysAddr) -> Block {
        Block::new(addr.line_base(self.config.geometry.line_size).0)
    }

    /// Accesses `addr`, returning the detailed per-set result together with
    /// the physical address of the evicted line, if any.
    pub fn access(&mut self, addr: PhysAddr) -> (AccessResult, Option<PhysAddr>) {
        let block = self.block_of(addr);
        let flat = self.config.geometry.flat_index(addr);
        let result = self.sets[flat].access(block);
        let evicted = match result {
            AccessResult::Miss {
                evicted: Some(b), ..
            } => Some(PhysAddr(b.id())),
            _ => None,
        };
        (result, evicted)
    }

    /// Whether `addr` currently resides in this level (non-mutating).
    pub fn contains(&self, addr: PhysAddr) -> bool {
        let block = self.block_of(addr);
        let flat = self.config.geometry.flat_index(addr);
        self.sets[flat].contains(block)
    }

    /// Invalidates the line containing `addr`, returning whether it was
    /// present.
    pub fn invalidate(&mut self, addr: PhysAddr) -> bool {
        let block = self.block_of(addr);
        let flat = self.config.geometry.flat_index(addr);
        self.sets[flat].invalidate(block)
    }

    /// Invalidates the whole level.
    pub fn invalidate_all(&mut self) {
        self.sets.iter_mut().for_each(CacheSet::invalidate_all);
    }

    /// Invalidates the whole level and resets every set's policy state.
    pub fn reset(&mut self) {
        self.sets.iter_mut().for_each(CacheSet::reset);
    }

    /// Read-only access to the set with the given flat index.
    ///
    /// # Panics
    ///
    /// Panics if `flat` is out of range.
    pub fn set(&self, flat: usize) -> &CacheSet {
        &self.sets[flat]
    }

    /// Mutable access to the set with the given flat index.
    ///
    /// # Panics
    ///
    /// Panics if `flat` is out of range.
    pub fn set_mut(&mut self, flat: usize) -> &mut CacheSet {
        &mut self.sets[flat]
    }

    /// Total number of sets (across slices).
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use policies::PolicyKind;

    fn small_level() -> CacheLevel {
        let geometry = CacheGeometry::new(2, 4, 1, 64);
        CacheLevel::new(
            LevelConfig {
                name: "L1".to_string(),
                geometry,
                inclusive: false,
            },
            |_| PolicyKind::Lru.build(2).unwrap(),
        )
    }

    #[test]
    fn addresses_in_different_sets_do_not_conflict() {
        let mut level = small_level();
        // 4 sets * 64 B lines: addresses 0 and 64 go to different sets.
        level.access(PhysAddr(0));
        level.access(PhysAddr(64));
        assert!(level.contains(PhysAddr(0)));
        assert!(level.contains(PhysAddr(64)));
    }

    #[test]
    fn congruent_addresses_evict_each_other() {
        let mut level = small_level();
        // Set stride is 4 * 64 = 256 bytes; three congruent lines overflow the
        // 2-way set.
        level.access(PhysAddr(0));
        level.access(PhysAddr(256));
        let (result, evicted) = level.access(PhysAddr(512));
        assert_eq!(result.outcome(), crate::HitMiss::Miss);
        assert_eq!(evicted, Some(PhysAddr(0)));
        assert!(!level.contains(PhysAddr(0)));
    }

    #[test]
    fn sub_line_offsets_share_a_line() {
        let mut level = small_level();
        level.access(PhysAddr(128));
        assert!(level.contains(PhysAddr(129)));
        let (result, _) = level.access(PhysAddr(190));
        assert_eq!(result.outcome(), crate::HitMiss::Hit);
    }

    #[test]
    fn invalidate_all_empties_the_level() {
        let mut level = small_level();
        level.access(PhysAddr(0));
        level.access(PhysAddr(64));
        level.invalidate_all();
        assert!(!level.contains(PhysAddr(0)));
        assert!(!level.contains(PhysAddr(64)));
    }

    #[test]
    #[should_panic(expected = "associativity must match")]
    fn rejects_mismatched_policy() {
        let geometry = CacheGeometry::new(2, 4, 1, 64);
        CacheLevel::new(
            LevelConfig {
                name: "L1".to_string(),
                geometry,
                inclusive: false,
            },
            |_| PolicyKind::Lru.build(4).unwrap(),
        );
    }
}
