//! Geometric description of one cache level.

use crate::address::{slice_hash, PhysAddr, SetIndex, SliceIndex};

/// Geometry of one cache level: associativity, number of sets per slice,
/// number of slices and line size (Table 3 of the paper lists the values for
/// the three evaluated processors).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheGeometry {
    /// Ways per set.
    pub associativity: usize,
    /// Sets per slice (must be a power of two so that set selection is a bit
    /// field of the address).
    pub sets_per_slice: usize,
    /// Number of slices (1 for L1/L2, 4 or 8 for the modelled L3 caches).
    pub slices: usize,
    /// Line size in bytes.
    pub line_size: u64,
}

impl CacheGeometry {
    /// Creates a geometry description.
    ///
    /// # Panics
    ///
    /// Panics if `sets_per_slice` or `line_size` is not a power of two, if
    /// `slices` is not 1, 2, 4 or 8, or if any field is zero.
    pub fn new(associativity: usize, sets_per_slice: usize, slices: usize, line_size: u64) -> Self {
        assert!(associativity >= 1, "associativity must be positive");
        assert!(
            sets_per_slice.is_power_of_two(),
            "sets per slice must be a power of two"
        );
        assert!(
            line_size.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(
            matches!(slices, 1 | 2 | 4 | 8),
            "slice count must be 1, 2, 4 or 8"
        );
        CacheGeometry {
            associativity,
            sets_per_slice,
            slices,
            line_size,
        }
    }

    /// Total number of sets across all slices.
    pub fn total_sets(&self) -> usize {
        self.sets_per_slice * self.slices
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.associativity as u64 * self.total_sets() as u64 * self.line_size
    }

    /// Number of address bits used for the line offset.
    pub fn offset_bits(&self) -> u32 {
        self.line_size.trailing_zeros()
    }

    /// Number of address bits used for the set index within a slice.
    pub fn set_bits(&self) -> u32 {
        self.sets_per_slice.trailing_zeros()
    }

    /// The set index (within a slice) that `addr` maps to.
    pub fn set_index(&self, addr: PhysAddr) -> SetIndex {
        let idx = (addr.0 >> self.offset_bits()) & (self.sets_per_slice as u64 - 1);
        SetIndex(idx as usize)
    }

    /// The slice that `addr` maps to.
    pub fn slice_index(&self, addr: PhysAddr) -> SliceIndex {
        slice_hash(addr, self.slices)
    }

    /// Flat index of the set `addr` maps to, across all slices
    /// (`slice * sets_per_slice + set`).
    pub fn flat_index(&self, addr: PhysAddr) -> usize {
        self.slice_index(addr).0 * self.sets_per_slice + self.set_index(addr).0
    }

    /// Whether two addresses are congruent in this cache level (same slice
    /// and same set), i.e. they compete for the same lines.
    pub fn congruent(&self, a: PhysAddr, b: PhysAddr) -> bool {
        self.flat_index(a) == self.flat_index(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Skylake i5-6500 L2 from Table 3: 4 ways, 1024 sets, 1 slice.
    fn skylake_l2() -> CacheGeometry {
        CacheGeometry::new(4, 1024, 1, 64)
    }

    #[test]
    fn capacity_matches_expectation() {
        // 4 * 1024 * 64 B = 256 KiB, the documented Skylake L2 size.
        assert_eq!(skylake_l2().capacity_bytes(), 256 * 1024);
    }

    #[test]
    fn set_index_uses_bits_above_the_offset() {
        let g = skylake_l2();
        assert_eq!(g.set_index(PhysAddr(0)), SetIndex(0));
        assert_eq!(g.set_index(PhysAddr(64)), SetIndex(1));
        assert_eq!(g.set_index(PhysAddr(63)), SetIndex(0));
        assert_eq!(g.set_index(PhysAddr(1024 * 64)), SetIndex(0));
    }

    #[test]
    fn congruence_requires_same_set_and_slice() {
        let g = skylake_l2();
        assert!(g.congruent(PhysAddr(0), PhysAddr(1024 * 64)));
        assert!(!g.congruent(PhysAddr(0), PhysAddr(64)));
    }

    #[test]
    fn flat_index_is_dense() {
        let g = CacheGeometry::new(16, 1024, 8, 64);
        for a in (0..1u64 << 22).step_by(64) {
            assert!(g.flat_index(PhysAddr(a)) < g.total_sets());
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_sets() {
        CacheGeometry::new(4, 1000, 1, 64);
    }

    #[test]
    #[should_panic(expected = "slice count")]
    fn rejects_unsupported_slices() {
        CacheGeometry::new(4, 1024, 6, 64);
    }
}
