//! An inclusive multi-level cache hierarchy.

use std::fmt;

use crate::address::PhysAddr;
use crate::level::CacheLevel;
use crate::set::HitMiss;

/// Identifier of a cache level within a [`Hierarchy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LevelId {
    /// First-level data cache.
    L1,
    /// Second-level cache.
    L2,
    /// Last-level cache.
    L3,
}

impl LevelId {
    /// All levels, ordered from the core outward.
    pub const ALL: [LevelId; 3] = [LevelId::L1, LevelId::L2, LevelId::L3];

    /// Dense index of the level (L1 = 0).
    pub fn index(self) -> usize {
        match self {
            LevelId::L1 => 0,
            LevelId::L2 => 1,
            LevelId::L3 => 2,
        }
    }

    /// Parses `"L1"`, `"L2"`, `"L3"` (case-insensitive).
    pub fn parse(s: &str) -> Option<LevelId> {
        match s.to_ascii_uppercase().as_str() {
            "L1" => Some(LevelId::L1),
            "L2" => Some(LevelId::L2),
            "L3" | "LLC" => Some(LevelId::L3),
            _ => None,
        }
    }
}

impl fmt::Display for LevelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LevelId::L1 => write!(f, "L1"),
            LevelId::L2 => write!(f, "L2"),
            LevelId::L3 => write!(f, "L3"),
        }
    }
}

/// Result of a hierarchy access: the per-level outcomes for the levels that
/// were consulted, in lookup order (L1 outward).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Outcome per consulted level.
    pub per_level: Vec<(LevelId, HitMiss)>,
}

impl AccessOutcome {
    /// The innermost level that supplied the data, or `None` if the access
    /// went to memory.
    pub fn served_by(&self) -> Option<LevelId> {
        self.per_level
            .iter()
            .find(|(_, o)| *o == HitMiss::Hit)
            .map(|(l, _)| *l)
    }

    /// Outcome at a specific level, if that level was consulted.
    pub fn at(&self, level: LevelId) -> Option<HitMiss> {
        self.per_level
            .iter()
            .find(|(l, _)| *l == level)
            .map(|(_, o)| *o)
    }
}

/// Configuration wrapper for building a [`Hierarchy`].
#[derive(Debug)]
pub struct HierarchyConfig {
    /// Levels ordered from the core outward (L1 first).  One to three levels
    /// are supported.
    pub levels: Vec<CacheLevel>,
}

/// A multi-level cache hierarchy with lookup, fill and back-invalidation.
///
/// Lookups proceed from L1 outward; the first hit stops the walk and the
/// block is filled into every level closer to the core (the common
/// fill-on-miss behaviour).  Evictions from levels marked inclusive
/// back-invalidate all closer levels, which is how the modelled Intel L3
/// behaves and is one of the interference sources CacheQuery must deal with.
///
/// Hierarchies are `Clone` so that a simulated CPU can be duplicated into
/// independent per-worker instances for parallel learning.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    levels: Vec<CacheLevel>,
}

impl Hierarchy {
    /// Creates a hierarchy from levels ordered L1 outward.
    ///
    /// # Panics
    ///
    /// Panics if no level or more than three levels are supplied.
    pub fn new(config: HierarchyConfig) -> Self {
        assert!(
            (1..=3).contains(&config.levels.len()),
            "a hierarchy has between one and three levels"
        );
        Hierarchy {
            levels: config.levels,
        }
    }

    /// Number of levels.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Read-only access to a level.
    ///
    /// # Panics
    ///
    /// Panics if the hierarchy does not contain `level`.
    pub fn level(&self, level: LevelId) -> &CacheLevel {
        &self.levels[level.index()]
    }

    /// Mutable access to a level.
    ///
    /// # Panics
    ///
    /// Panics if the hierarchy does not contain `level`.
    pub fn level_mut(&mut self, level: LevelId) -> &mut CacheLevel {
        &mut self.levels[level.index()]
    }

    /// Whether the hierarchy has the given level.
    pub fn has_level(&self, level: LevelId) -> bool {
        level.index() < self.levels.len()
    }

    /// Performs a load of `addr`, updating every consulted level, and returns
    /// the per-level outcomes.
    pub fn access(&mut self, addr: PhysAddr) -> AccessOutcome {
        let mut per_level = Vec::with_capacity(self.levels.len());
        let mut hit_level: Option<usize> = None;

        for (i, level) in self.levels.iter_mut().enumerate() {
            let level_id = LevelId::ALL[i];
            if level.contains(addr) {
                // Record the hit and update that level's replacement state.
                let (result, _) = level.access(addr);
                debug_assert_eq!(result.outcome(), HitMiss::Hit);
                per_level.push((level_id, HitMiss::Hit));
                hit_level = Some(i);
                break;
            } else {
                per_level.push((level_id, HitMiss::Miss));
            }
        }

        // Fill the block into every level closer to the core than the one
        // that served it (or into all levels on a full miss), collecting
        // evictions from inclusive levels for back-invalidation.
        let fill_upto = hit_level.unwrap_or(self.levels.len());
        let mut back_invalidate: Vec<PhysAddr> = Vec::new();
        for i in (0..fill_upto).rev() {
            let (result, evicted) = self.levels[i].access(addr);
            debug_assert_eq!(result.outcome(), HitMiss::Miss);
            if let Some(victim) = evicted {
                if self.levels[i].config().inclusive {
                    back_invalidate.push(victim);
                }
            }
        }
        for victim in back_invalidate {
            self.back_invalidate(victim);
        }

        AccessOutcome { per_level }
    }

    /// Invalidates `victim` from every level closer to the core than the
    /// inclusive level it was evicted from.
    fn back_invalidate(&mut self, victim: PhysAddr) {
        for level in &mut self.levels {
            if !level.config().inclusive {
                level.invalidate(victim);
            }
        }
    }

    /// Flushes `addr` from the entire hierarchy (models `clflush`).
    pub fn flush(&mut self, addr: PhysAddr) {
        for level in &mut self.levels {
            level.invalidate(addr);
        }
    }

    /// Invalidates every line of every level (models `wbinvd`).
    pub fn flush_all(&mut self) {
        for level in &mut self.levels {
            level.invalidate_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::CacheGeometry;
    use crate::level::LevelConfig;
    use policies::PolicyKind;

    /// A miniature three-level hierarchy: 2-way 4-set L1, 4-way 8-set L2,
    /// 8-way 16-set inclusive L3.
    fn small_hierarchy() -> Hierarchy {
        let mk = |name: &str, assoc: usize, sets: usize, inclusive: bool| {
            CacheLevel::new(
                LevelConfig {
                    name: name.to_string(),
                    geometry: CacheGeometry::new(assoc, sets, 1, 64),
                    inclusive,
                },
                move |_| PolicyKind::Lru.build(assoc).unwrap(),
            )
        };
        Hierarchy::new(HierarchyConfig {
            levels: vec![
                mk("L1", 2, 4, false),
                mk("L2", 4, 8, false),
                mk("L3", 8, 16, true),
            ],
        })
    }

    #[test]
    fn first_access_misses_everywhere_then_hits_l1() {
        let mut h = small_hierarchy();
        let outcome = h.access(PhysAddr(0x1000));
        assert_eq!(outcome.served_by(), None);
        assert_eq!(outcome.per_level.len(), 3);
        let outcome = h.access(PhysAddr(0x1000));
        assert_eq!(outcome.served_by(), Some(LevelId::L1));
        assert_eq!(outcome.per_level.len(), 1);
    }

    #[test]
    fn l1_eviction_leaves_the_block_in_l2() {
        let mut h = small_hierarchy();
        let target = PhysAddr(0x0);
        h.access(target);
        // Evict the target from L1 by loading two more lines congruent in L1
        // (L1 set stride = 4 sets * 64 B = 256 B) but not congruent in L2
        // (stride 512 B).
        h.access(PhysAddr(256));
        h.access(PhysAddr(256 * 3));
        assert!(!h.level(LevelId::L1).contains(target));
        let outcome = h.access(target);
        assert_eq!(outcome.served_by(), Some(LevelId::L2));
    }

    #[test]
    fn inclusive_l3_eviction_back_invalidates_l1() {
        let mut h = small_hierarchy();
        let target = PhysAddr(0);
        h.access(target);
        // Fill the L3 set of `target` with 8 more congruent lines
        // (L3 set stride = 16 * 64 = 1024 B) so that `target` is evicted from
        // the inclusive L3.
        for i in 1..=8u64 {
            h.access(PhysAddr(i * 1024));
        }
        assert!(!h.level(LevelId::L3).contains(target));
        // Inclusivity: it must have disappeared from L1/L2 as well.
        assert!(!h.level(LevelId::L1).contains(target));
        assert!(!h.level(LevelId::L2).contains(target));
    }

    #[test]
    fn flush_removes_the_block_from_all_levels() {
        let mut h = small_hierarchy();
        let target = PhysAddr(0x2000);
        h.access(target);
        h.flush(target);
        for level in LevelId::ALL {
            assert!(!h.level(level).contains(target));
        }
        let outcome = h.access(target);
        assert_eq!(outcome.served_by(), None);
    }

    #[test]
    fn flush_all_empties_everything() {
        let mut h = small_hierarchy();
        for i in 0..32u64 {
            h.access(PhysAddr(i * 64));
        }
        h.flush_all();
        let outcome = h.access(PhysAddr(0));
        assert_eq!(outcome.served_by(), None);
    }

    #[test]
    fn level_id_parsing() {
        assert_eq!(LevelId::parse("l2"), Some(LevelId::L2));
        assert_eq!(LevelId::parse("LLC"), Some(LevelId::L3));
        assert_eq!(LevelId::parse("L4"), None);
    }
}
