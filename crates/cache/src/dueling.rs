//! Set dueling: leader and follower sets for adaptive replacement policies.
//!
//! Modern Intel last-level caches implement *adaptive* replacement (Appendix B
//! of the paper, building on Qureshi et al.'s DIP and Jaleel et al.'s DRRIP):
//! a few fixed *leader* sets permanently run one of two competing policies,
//! a saturating counter (PSEL) tracks which leader group misses less, and the
//! remaining *follower* sets dynamically adopt the winning policy.
//!
//! The paper only learns the leader sets (whose policy is fixed and
//! deterministic); this module provides the bookkeeping that the simulated
//! last-level caches use to reproduce that structure, so that the leader-set
//! detection experiment (Appendix B) and the "followers are non-deterministic"
//! observation can be replayed against the simulator.

use std::sync::atomic::{AtomicI32, Ordering};
use std::sync::Arc;

use policies::ReplacementPolicy;

use crate::address::PhysAddr;
use crate::geometry::CacheGeometry;
use crate::set::{AccessResult, Block};

/// Role of a cache set in the set-dueling scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DuelingRole {
    /// Leader set permanently running the *primary* policy (the
    /// thrash-vulnerable one, e.g. New2 on the simulated Skylake L3).
    LeaderPrimary,
    /// Leader set permanently running the *alternate* policy (the
    /// thrash-resistant one, e.g. a BRRIP-like insertion).
    LeaderAlternate,
    /// Follower set that adopts whichever policy the PSEL counter favours.
    Follower,
}

/// Configuration of the set-dueling controller.
#[derive(Debug, Clone)]
pub struct SetDuelingConfig {
    /// Role of every set, indexed by flat set index
    /// (`slice * sets_per_slice + set`).
    pub roles: Vec<DuelingRole>,
    /// Number of bits of the PSEL saturating counter (10 in the DIP/DRRIP
    /// proposals).
    pub psel_bits: u32,
}

/// The set-dueling controller: per-set roles plus the shared PSEL counter.
///
/// The PSEL counter is shared between all sets of a level (and, as the paper
/// observes on Skylake and Kaby Lake, across slices), so it lives behind an
/// [`Arc`] and uses atomic updates; cloning a [`SetDueling`] shares the
/// counter.
#[derive(Debug, Clone)]
pub struct SetDueling {
    roles: Vec<DuelingRole>,
    psel: Arc<AtomicI32>,
    max_abs: i32,
}

impl SetDueling {
    /// Creates a controller from `config`.
    ///
    /// # Panics
    ///
    /// Panics if `psel_bits` is 0 or larger than 20, or if `roles` is empty.
    pub fn new(config: SetDuelingConfig) -> Self {
        assert!(!config.roles.is_empty(), "at least one set is required");
        assert!(
            (1..=20).contains(&config.psel_bits),
            "psel_bits must be between 1 and 20"
        );
        SetDueling {
            roles: config.roles,
            psel: Arc::new(AtomicI32::new(0)),
            max_abs: (1 << (config.psel_bits - 1)) - 1,
        }
    }

    /// Creates a controller where every set is a follower (no dueling); used
    /// by non-adaptive levels.
    pub fn all_followers(num_sets: usize) -> Self {
        SetDueling::new(SetDuelingConfig {
            roles: vec![DuelingRole::Follower; num_sets.max(1)],
            psel_bits: 10,
        })
    }

    /// Role of the set with flat index `flat_set`.
    ///
    /// # Panics
    ///
    /// Panics if `flat_set` is out of range.
    pub fn role(&self, flat_set: usize) -> DuelingRole {
        self.roles[flat_set]
    }

    /// Number of sets covered by this controller.
    pub fn num_sets(&self) -> usize {
        self.roles.len()
    }

    /// Flat indices of all leader sets of the given role.
    pub fn leaders(&self, role: DuelingRole) -> Vec<usize> {
        self.roles
            .iter()
            .enumerate()
            .filter(|(_, &r)| r == role)
            .map(|(i, _)| i)
            .collect()
    }

    /// Records a miss in a leader set, moving PSEL towards the *other*
    /// policy.  Misses in follower sets do not update PSEL.
    pub fn record_miss(&self, role: DuelingRole) {
        let delta = match role {
            DuelingRole::LeaderPrimary => 1,
            DuelingRole::LeaderAlternate => -1,
            DuelingRole::Follower => return,
        };
        let max_abs = self.max_abs;
        let _ = self
            .psel
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some((v + delta).clamp(-max_abs, max_abs))
            });
    }

    /// Whether follower sets should currently use the *alternate* policy
    /// (true when the primary leaders are missing more).
    pub fn followers_use_alternate(&self) -> bool {
        self.psel.load(Ordering::Relaxed) > 0
    }

    /// Current PSEL value (positive: primary leaders miss more).
    pub fn psel(&self) -> i32 {
        self.psel.load(Ordering::Relaxed)
    }

    /// Forces the PSEL counter to `value` (clamped to the counter's range).
    ///
    /// Real hardware offers no such knob; it exists so experiments can plant
    /// a known duel state — leader-set detection must work from *any* initial
    /// PSEL, and the cartography prober flips followers between both policies
    /// to demonstrate their non-determinism.
    pub fn force_psel(&self, value: i32) {
        self.psel
            .store(value.clamp(-self.max_abs, self.max_abs), Ordering::Relaxed);
    }
}

/// One set of a [`DuelingCache`]: stored blocks plus *both* candidate
/// policies, kept in lockstep so the set can switch allegiance at any miss.
struct DuelingSet {
    lines: Vec<Option<Block>>,
    primary: Box<dyn ReplacementPolicy>,
    alternate: Box<dyn ReplacementPolicy>,
}

/// An executable set-dueling cache: every set stores real blocks and keeps
/// *two* replacement policies in lockstep, while the shared PSEL counter
/// decides which of the two picks victims in follower sets.
///
/// This is the runnable counterpart of the [`SetDueling`] bookkeeping: leader
/// sets always evict with their fixed policy, follower sets consult
/// [`SetDueling::followers_use_alternate`] at each miss — so a follower whose
/// winning policy never flips is behaviourally identical to a plain
/// [`crate::CacheSet`] running that policy.  Both policies observe every hit
/// and every insertion (the losing policy is told about the winner's victim
/// line), which is what lets a set change allegiance mid-stream without
/// resetting.
pub struct DuelingCache {
    geometry: CacheGeometry,
    dueling: SetDueling,
    sets: Vec<DuelingSet>,
}

impl DuelingCache {
    /// Creates a dueling cache over `geometry` with the given per-set roles.
    ///
    /// `make_primary` and `make_alternate` are called once per flat set index
    /// to build the two competing policies.  All sets start empty.
    ///
    /// # Panics
    ///
    /// Panics if `roles` does not have exactly one role per set of the
    /// geometry, or if either factory returns a policy whose associativity
    /// disagrees with the geometry.
    pub fn new(
        geometry: CacheGeometry,
        roles: Vec<DuelingRole>,
        mut make_primary: impl FnMut(usize) -> Box<dyn ReplacementPolicy>,
        mut make_alternate: impl FnMut(usize) -> Box<dyn ReplacementPolicy>,
    ) -> Self {
        assert_eq!(
            roles.len(),
            geometry.total_sets(),
            "one role per set is required"
        );
        let sets = (0..geometry.total_sets())
            .map(|flat| {
                let primary = make_primary(flat);
                let alternate = make_alternate(flat);
                assert_eq!(
                    primary.associativity(),
                    geometry.associativity,
                    "primary policy associativity must match the geometry"
                );
                assert_eq!(
                    alternate.associativity(),
                    geometry.associativity,
                    "alternate policy associativity must match the geometry"
                );
                DuelingSet {
                    lines: vec![None; geometry.associativity],
                    primary,
                    alternate,
                }
            })
            .collect();
        DuelingCache {
            geometry,
            dueling: SetDueling::new(SetDuelingConfig {
                roles,
                psel_bits: 10,
            }),
            sets,
        }
    }

    /// The geometry accesses are mapped through.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// The PSEL/role bookkeeping (shared counter, leader indices).
    pub fn dueling(&self) -> &SetDueling {
        &self.dueling
    }

    /// Accesses `addr`, updating both policies of its set and — on a leader
    /// miss — the PSEL counter.
    pub fn access(&mut self, addr: PhysAddr) -> AccessResult {
        let flat = self.geometry.flat_index(addr);
        let role = self.dueling.role(flat);
        let block = Block::new(addr.line_base(self.geometry.line_size).0);
        let set = &mut self.sets[flat];
        if let Some(line) = set.lines.iter().position(|&b| b == Some(block)) {
            set.primary.on_hit(line);
            set.alternate.on_hit(line);
            return AccessResult::Hit { line };
        }
        self.dueling.record_miss(role);
        if let Some(line) = set.lines.iter().position(|b| b.is_none()) {
            set.lines[line] = Some(block);
            set.primary.on_insert(line);
            set.alternate.on_insert(line);
            return AccessResult::Miss {
                line,
                evicted: None,
            };
        }
        let use_alternate = match role {
            DuelingRole::LeaderPrimary => false,
            DuelingRole::LeaderAlternate => true,
            DuelingRole::Follower => self.dueling.followers_use_alternate(),
        };
        let line = if use_alternate {
            let line = set.alternate.on_miss();
            set.primary.on_insert(line);
            line
        } else {
            let line = set.primary.on_miss();
            set.alternate.on_insert(line);
            line
        };
        let evicted = set.lines[line].replace(block);
        AccessResult::Miss { line, evicted }
    }
}

/// Leader-set selection function observed on the simulated Skylake and Kaby
/// Lake L3 caches (Appendix B):
///
/// * primary ("thrash-vulnerable", policy New2) leaders satisfy
///   `(((set & 0x3e0) >> 5) ^ (set & 0x1f)) == 0x00 && (set & 0x2) == 0x0`;
/// * alternate leaders satisfy
///   `(((set & 0x3e0) >> 5) ^ (set & 0x1f)) == 0x1f && (set & 0x2) == 0x2`.
///
/// The same selection applies in every slice.
pub fn skylake_like_roles(sets_per_slice: usize, slices: usize) -> Vec<DuelingRole> {
    let mut roles = Vec::with_capacity(sets_per_slice * slices);
    for _slice in 0..slices {
        for set in 0..sets_per_slice {
            let fold = ((set & 0x3e0) >> 5) ^ (set & 0x1f);
            let role = if fold == 0x00 && (set & 0x2) == 0x0 {
                DuelingRole::LeaderPrimary
            } else if fold == 0x1f && (set & 0x2) == 0x2 {
                DuelingRole::LeaderAlternate
            } else {
                DuelingRole::Follower
            };
            roles.push(role);
        }
    }
    roles
}

/// Leader-set selection observed on the simulated Haswell L3 (Appendix B):
/// sets 512–575 of slice 0 are primary leaders and sets 768–831 of slice 0 are
/// alternate leaders; every other set follows.
pub fn haswell_like_roles(sets_per_slice: usize, slices: usize) -> Vec<DuelingRole> {
    let mut roles = vec![DuelingRole::Follower; sets_per_slice * slices];
    for (set, role) in roles.iter_mut().enumerate().take(sets_per_slice) {
        if (512..=575).contains(&set) {
            *role = DuelingRole::LeaderPrimary;
        } else if (768..=831).contains(&set) {
            *role = DuelingRole::LeaderAlternate;
        }
    }
    roles
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn psel_moves_towards_the_policy_that_misses_less() {
        let d = SetDueling::new(SetDuelingConfig {
            roles: vec![
                DuelingRole::LeaderPrimary,
                DuelingRole::LeaderAlternate,
                DuelingRole::Follower,
            ],
            psel_bits: 10,
        });
        assert!(!d.followers_use_alternate());
        for _ in 0..5 {
            d.record_miss(DuelingRole::LeaderPrimary);
        }
        assert!(d.followers_use_alternate());
        for _ in 0..10 {
            d.record_miss(DuelingRole::LeaderAlternate);
        }
        assert!(!d.followers_use_alternate());
    }

    #[test]
    fn psel_saturates() {
        let d = SetDueling::new(SetDuelingConfig {
            roles: vec![DuelingRole::LeaderPrimary],
            psel_bits: 4,
        });
        for _ in 0..100 {
            d.record_miss(DuelingRole::LeaderPrimary);
        }
        assert_eq!(d.psel(), 7);
    }

    #[test]
    fn follower_misses_do_not_move_psel() {
        let d = SetDueling::all_followers(8);
        d.record_miss(DuelingRole::Follower);
        assert_eq!(d.psel(), 0);
    }

    #[test]
    fn cloning_shares_the_counter() {
        let d = SetDueling::all_followers(1);
        let d2 = d.clone();
        d.record_miss(DuelingRole::Follower);
        assert_eq!(d2.psel(), d.psel());
    }

    #[test]
    fn skylake_selection_matches_the_published_formula() {
        let roles = skylake_like_roles(1024, 1);
        // Set 0 satisfies the primary condition; set 33 = 0b0000100001 folds
        // to 0b00001 ^ 0b00001 = 0 and has bit 1 clear, so it is also primary
        // (the paper's Table 4 lists 0, 33, 132, 165, … as analysed sets).
        assert_eq!(roles[0], DuelingRole::LeaderPrimary);
        assert_eq!(roles[33], DuelingRole::LeaderPrimary);
        assert_eq!(roles[132], DuelingRole::LeaderPrimary);
        assert_eq!(roles[165], DuelingRole::LeaderPrimary);
        assert_eq!(roles[957], DuelingRole::LeaderPrimary);
        // A couple of non-leader sets.
        assert_eq!(roles[1], DuelingRole::Follower);
        assert_eq!(roles[2], DuelingRole::Follower);
        // There are 16 primary leaders per slice for 1024 sets.
        let primaries = roles
            .iter()
            .filter(|&&r| r == DuelingRole::LeaderPrimary)
            .count();
        assert_eq!(primaries, 16);
    }

    #[test]
    fn haswell_selection_is_restricted_to_slice_zero() {
        let roles = haswell_like_roles(2048, 4);
        assert_eq!(roles[512], DuelingRole::LeaderPrimary);
        assert_eq!(roles[575], DuelingRole::LeaderPrimary);
        assert_eq!(roles[768], DuelingRole::LeaderAlternate);
        assert_eq!(roles[2048 + 512], DuelingRole::Follower);
    }

    #[test]
    #[should_panic(expected = "psel_bits")]
    fn rejects_zero_psel_bits() {
        SetDueling::new(SetDuelingConfig {
            roles: vec![DuelingRole::Follower],
            psel_bits: 0,
        });
    }

    use crate::{CacheSet, PhysAddr};
    use policies::PolicyKind;

    /// 2 ways x 4 sets x 64 B lines; `addr(set, tag)` builds an address of
    /// the given set.
    fn small_geometry() -> CacheGeometry {
        CacheGeometry::new(2, 4, 1, 64)
    }

    fn addr(set: u64, tag: u64) -> PhysAddr {
        PhysAddr((tag << 8) | (set << 6))
    }

    fn dueling_cache(roles: Vec<DuelingRole>) -> DuelingCache {
        DuelingCache::new(
            small_geometry(),
            roles,
            |_| PolicyKind::Lru.build(2).unwrap(),
            |_| PolicyKind::Lip.build(2).unwrap(),
        )
    }

    #[test]
    fn leader_misses_tip_psel_and_flip_followers() {
        let mut cache = dueling_cache(vec![
            DuelingRole::LeaderPrimary,
            DuelingRole::LeaderAlternate,
            DuelingRole::Follower,
            DuelingRole::Follower,
        ]);
        assert!(!cache.dueling().followers_use_alternate());
        // Thrash the primary leader (set 0) with 3 congruent lines: every
        // access past the fills misses under LRU and bumps PSEL.
        for i in 0..30u64 {
            cache.access(addr(0, i % 3));
        }
        assert!(cache.dueling().psel() > 0);
        assert!(cache.dueling().followers_use_alternate());
    }

    #[test]
    fn a_stable_follower_is_exactly_the_winning_policy() {
        let mut cache = dueling_cache(vec![
            DuelingRole::LeaderPrimary,
            DuelingRole::LeaderAlternate,
            DuelingRole::Follower,
            DuelingRole::Follower,
        ]);
        // Tip PSEL towards the alternate policy (LIP) by thrashing the
        // primary leader, then leave the leaders alone.
        for i in 0..40u64 {
            cache.access(addr(0, i % 3));
        }
        assert!(cache.dueling().followers_use_alternate());
        // Follower misses never move PSEL, so the winner stays LIP for the
        // whole follower stream: set 2 must now be indistinguishable from a
        // standalone LIP set fed the same blocks.
        let mut reference = CacheSet::new(PolicyKind::Lip.build(2).unwrap());
        for i in [0u64, 1, 2, 0, 3, 1, 1, 4, 2, 0, 5, 3, 2, 2, 1, 0] {
            let got = cache.access(addr(2, i));
            let want = reference.access(Block::new(addr(2, i).line_base(64).0));
            assert_eq!(got.outcome(), want.outcome(), "tag {i}");
            assert_eq!(got.line(), want.line(), "tag {i}");
        }
        assert!(cache.dueling().followers_use_alternate(), "PSEL moved");
    }

    #[test]
    fn leaders_ignore_psel() {
        let mut cache = dueling_cache(vec![
            DuelingRole::LeaderPrimary,
            DuelingRole::LeaderAlternate,
            DuelingRole::Follower,
            DuelingRole::Follower,
        ]);
        // Even with PSEL saturated towards the alternate policy, the primary
        // leader keeps evicting with LRU: an A B C A B C … scan over a 2-way
        // set has zero hits under LRU, while LIP (insert-at-LRU) retains the
        // first-installed block and would hit.
        for i in 0..60u64 {
            cache.access(addr(0, i % 3));
        }
        let mut hits = 0;
        for i in 60..120u64 {
            if cache.access(addr(0, i % 3)).outcome() == crate::HitMiss::Hit {
                hits += 1;
            }
        }
        assert_eq!(hits, 0, "a primary leader must keep thrashing under LRU");
        // The alternate leader under the same stream does hit (LIP keeps A).
        let mut hits = 0;
        for i in 0..60u64 {
            if cache.access(addr(1, i % 3)).outcome() == crate::HitMiss::Hit {
                hits += 1;
            }
        }
        assert!(hits > 0, "an alternate leader must benefit from LIP");
    }

    #[test]
    #[should_panic(expected = "one role per set")]
    fn dueling_cache_rejects_mismatched_roles() {
        dueling_cache(vec![DuelingRole::Follower]);
    }
}
