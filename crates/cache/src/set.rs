//! A single set of an n-way set-associative cache (Definition 2.3, Figure 2).

use std::fmt;

use policies::ReplacementPolicy;

/// A memory block identifier.
///
/// For the software-simulated caches of the §6 case study blocks are abstract
/// identifiers; for the simulated hardware they are line-aligned physical
/// addresses.  Either way the replacement policy never inspects the value —
/// the data-independence symmetry Polca exploits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Block(u64);

impl Block {
    /// Creates a block from a raw identifier.
    pub fn new(id: u64) -> Self {
        Block(id)
    }

    /// The raw identifier.
    pub fn id(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{:x}", self.0)
    }
}

/// Whether an access hit or missed the cache (the cache output alphabet of
/// Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HitMiss {
    /// The block was present.
    Hit,
    /// The block was absent and has been inserted.
    Miss,
}

impl fmt::Display for HitMiss {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HitMiss::Hit => write!(f, "Hit"),
            HitMiss::Miss => write!(f, "Miss"),
        }
    }
}

/// Detailed result of a [`CacheSet::access`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessResult {
    /// The block was found in the given line.
    Hit {
        /// Line that holds the block.
        line: usize,
    },
    /// The block was inserted into the given line.
    Miss {
        /// Line that received the block.
        line: usize,
        /// Block that was evicted to make room, if the line was valid.
        evicted: Option<Block>,
    },
}

impl AccessResult {
    /// Collapses the detailed result into the hit/miss output of the cache
    /// LTS.
    pub fn outcome(self) -> HitMiss {
        match self {
            AccessResult::Hit { .. } => HitMiss::Hit,
            AccessResult::Miss { .. } => HitMiss::Miss,
        }
    }

    /// The line involved in the access.
    pub fn line(self) -> usize {
        match self {
            AccessResult::Hit { line } | AccessResult::Miss { line, .. } => line,
        }
    }
}

/// A single cache set: an array of lines plus the control state of its
/// replacement policy.
///
/// This is the LTS of Definition 2.3.  The transition rules of Figure 2 are
/// implemented by [`CacheSet::access`]; in addition the set supports
/// invalidation (`clflush`-style), which the paper's model does not need but
/// the simulated hardware does.
#[derive(Debug, Clone)]
pub struct CacheSet {
    lines: Vec<Option<Block>>,
    policy: Box<dyn ReplacementPolicy>,
}

impl CacheSet {
    /// Creates an empty cache set governed by `policy`.
    pub fn new(policy: Box<dyn ReplacementPolicy>) -> Self {
        let assoc = policy.associativity();
        CacheSet {
            lines: vec![None; assoc],
            policy,
        }
    }

    /// Creates a cache set pre-filled with the given initial content `cc0`,
    /// with block `i` stored in line `i`.
    ///
    /// # Panics
    ///
    /// Panics if the number of blocks differs from the policy's associativity
    /// or if the blocks are not pairwise distinct.
    pub fn filled(
        policy: Box<dyn ReplacementPolicy>,
        blocks: impl IntoIterator<Item = Block>,
    ) -> Self {
        let assoc = policy.associativity();
        let lines: Vec<Option<Block>> = blocks.into_iter().map(Some).collect();
        assert_eq!(
            lines.len(),
            assoc,
            "initial content must have exactly associativity-many blocks"
        );
        for i in 0..lines.len() {
            for j in i + 1..lines.len() {
                assert_ne!(lines[i], lines[j], "initial content must not repeat blocks");
            }
        }
        CacheSet { lines, policy }
    }

    /// Associativity (number of lines) of this set.
    pub fn associativity(&self) -> usize {
        self.lines.len()
    }

    /// The replacement policy's name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Current content: `content()[i]` is the block stored in line `i`.
    pub fn content(&self) -> &[Option<Block>] {
        &self.lines
    }

    /// Returns the line holding `block`, if present.
    pub fn find(&self, block: Block) -> Option<usize> {
        self.lines.iter().position(|&l| l == Some(block))
    }

    /// Whether `block` is currently stored.
    pub fn contains(&self, block: Block) -> bool {
        self.find(block).is_some()
    }

    /// Number of valid (filled) lines.
    pub fn valid_lines(&self) -> usize {
        self.lines.iter().filter(|l| l.is_some()).count()
    }

    /// Accesses `block`, applying the Hit/Miss rules of Figure 2.
    ///
    /// On a miss, an invalid line is filled first if one exists (the paper's
    /// model always starts from a full cache, but after a flush the simulated
    /// hardware has invalid lines); otherwise the replacement policy selects
    /// the victim.
    pub fn access(&mut self, block: Block) -> AccessResult {
        if let Some(line) = self.find(block) {
            self.policy.on_hit(line);
            return AccessResult::Hit { line };
        }
        // Prefer filling an invalid line, mirroring real hardware behaviour.
        if let Some(line) = self.lines.iter().position(|l| l.is_none()) {
            self.lines[line] = Some(block);
            self.policy.on_insert(line);
            return AccessResult::Miss {
                line,
                evicted: None,
            };
        }
        let line = self.policy.on_miss();
        let evicted = self.lines[line];
        self.lines[line] = Some(block);
        AccessResult::Miss { line, evicted }
    }

    /// Invalidates `block` if present (models `clflush`), returning whether it
    /// was present.
    ///
    /// The replacement policy is notified through
    /// [`policies::ReplacementPolicy::on_invalidate`]; whether that clears any
    /// per-line metadata is the policy's decision (most keep it, cf. the
    /// reset-sequence column of Table 4).
    pub fn invalidate(&mut self, block: Block) -> bool {
        match self.find(block) {
            Some(line) => {
                self.lines[line] = None;
                self.policy.on_invalidate(line);
                true
            }
            None => false,
        }
    }

    /// Invalidates every line (models `wbinvd` restricted to this set).
    pub fn invalidate_all(&mut self) {
        for line in 0..self.lines.len() {
            if self.lines[line].is_some() {
                self.lines[line] = None;
                self.policy.on_invalidate(line);
            }
        }
    }

    /// Resets the policy control state *and* clears the content.
    pub fn reset(&mut self) {
        self.policy.reset();
        self.invalidate_all();
    }

    /// The policy control state key (for tests and diagnostics).
    pub fn policy_state_key(&self) -> Vec<u32> {
        self.policy.state_key()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use policies::PolicyKind;

    fn lru_set(assoc: usize) -> CacheSet {
        CacheSet::filled(
            PolicyKind::Lru.build(assoc).unwrap(),
            (0..assoc as u64).map(Block::new),
        )
    }

    #[test]
    fn figure_1_traces() {
        // A B C A -> Hit Hit Miss Miss and A B C B -> Hit Hit Miss Hit on a
        // 2-way set containing A, B (Figure 1b of the paper, LRU policy).
        let run = |blocks: &[u64]| -> Vec<HitMiss> {
            let mut set = lru_set(2);
            blocks
                .iter()
                .map(|&b| set.access(Block::new(b)).outcome())
                .collect()
        };
        assert_eq!(
            run(&[0, 1, 2, 0]),
            vec![HitMiss::Hit, HitMiss::Hit, HitMiss::Miss, HitMiss::Miss]
        );
        assert_eq!(
            run(&[0, 1, 2, 1]),
            vec![HitMiss::Hit, HitMiss::Hit, HitMiss::Miss, HitMiss::Hit]
        );
    }

    #[test]
    fn example_2_4_transitions() {
        // From state <A, B> with LRU (Example 2.4): B hits, A hits — making B
        // the least recently used — and C then misses, evicting B from line 1.
        let mut set = lru_set(2);
        assert_eq!(set.access(Block::new(1)).outcome(), HitMiss::Hit);
        assert_eq!(set.access(Block::new(0)).outcome(), HitMiss::Hit);
        let result = set.access(Block::new(2));
        assert_eq!(
            result,
            AccessResult::Miss {
                line: 1,
                evicted: Some(Block::new(1))
            }
        );
    }

    #[test]
    fn content_never_repeats_blocks() {
        let mut set = lru_set(4);
        for b in 0..100u64 {
            set.access(Block::new(b % 7));
            let mut present: Vec<_> = set.content().iter().filter_map(|l| *l).collect();
            let before = present.len();
            present.dedup();
            assert_eq!(before, 4);
            present.sort();
            present.dedup();
            assert_eq!(present.len(), 4);
        }
    }

    #[test]
    fn invalid_lines_are_filled_first() {
        let policy = PolicyKind::Lru.build(4).unwrap();
        let mut set = CacheSet::new(policy);
        for b in 0..4u64 {
            let result = set.access(Block::new(b));
            assert_eq!(
                result,
                AccessResult::Miss {
                    line: b as usize,
                    evicted: None
                }
            );
        }
        assert_eq!(set.valid_lines(), 4);
        // The next miss evicts the least recently used block, which is block 0.
        let result = set.access(Block::new(99));
        assert_eq!(
            result,
            AccessResult::Miss {
                line: 0,
                evicted: Some(Block::new(0))
            }
        );
    }

    #[test]
    fn invalidate_removes_a_single_block() {
        let mut set = lru_set(4);
        assert!(set.invalidate(Block::new(2)));
        assert!(!set.contains(Block::new(2)));
        assert!(!set.invalidate(Block::new(2)));
        assert_eq!(set.valid_lines(), 3);
        // The invalidated line is refilled before any eviction happens.
        let result = set.access(Block::new(42));
        assert_eq!(
            result,
            AccessResult::Miss {
                line: 2,
                evicted: None
            }
        );
    }

    #[test]
    fn reset_clears_content_and_policy() {
        let mut set = lru_set(4);
        set.access(Block::new(9));
        set.reset();
        assert_eq!(set.valid_lines(), 0);
        assert_eq!(
            set.policy_state_key(),
            PolicyKind::Lru.build(4).unwrap().state_key()
        );
    }

    #[test]
    #[should_panic(expected = "must not repeat")]
    fn filled_rejects_duplicate_blocks() {
        CacheSet::filled(
            PolicyKind::Lru.build(2).unwrap(),
            [Block::new(1), Block::new(1)],
        );
    }

    #[test]
    #[should_panic(expected = "associativity-many")]
    fn filled_rejects_wrong_arity() {
        CacheSet::filled(PolicyKind::Lru.build(2).unwrap(), [Block::new(1)]);
    }
}
