//! Physical addresses, set-index extraction and the last-level-cache slice
//! hash.

use std::fmt;

/// A physical memory address in the simulated machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhysAddr(pub u64);

impl PhysAddr {
    /// The address of the first byte of the cache line containing this
    /// address, for lines of `line_size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `line_size` is not a power of two.
    pub fn line_base(self, line_size: u64) -> PhysAddr {
        assert!(
            line_size.is_power_of_two(),
            "line size must be a power of two"
        );
        PhysAddr(self.0 & !(line_size - 1))
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

/// Index of a cache set within one slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SetIndex(pub usize);

impl fmt::Display for SetIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "set{}", self.0)
    }
}

/// Index of a last-level-cache slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SliceIndex(pub usize);

impl fmt::Display for SliceIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slice{}", self.0)
    }
}

/// XOR-folding hash selecting the last-level-cache slice for a physical
/// address, in the style of the complex addressing function reverse-engineered
/// for Intel processors by Maurice et al. (RAID'15), which the paper relies on
/// for its set mapping (§4.3).
///
/// For `num_slices == 1` the result is always slice 0.  For a power-of-two
/// number of slices, each selection bit is the XOR of a fixed subset of the
/// upper address bits; the masks below follow the published functions for
/// 2/4/8-slice parts (truncated to the simulated 39-bit physical address
/// space).  The exact constants are irrelevant for the reproduction — what
/// matters is that congruent addresses must agree on the hash, which the
/// address-selection logic of CacheQuery has to take into account — but using
/// the published structure keeps the simulated mapping realistic.
///
/// # Panics
///
/// Panics if `num_slices` is not 1, 2, 4 or 8.
pub fn slice_hash(addr: PhysAddr, num_slices: usize) -> SliceIndex {
    // Bit masks (over physical address bits) whose parities form the slice
    // selection bits o0, o1, o2; from the complex addressing functions
    // published for Intel CPUs (bits below 6 never participate because they
    // address bytes within a line).
    const MASK_O0: u64 = 0x1b5f575440;
    const MASK_O1: u64 = 0x2eb5faa880;
    const MASK_O2: u64 = 0x3cccc93100;

    let parity = |mask: u64| -> usize { ((addr.0 & mask).count_ones() & 1) as usize };
    let index = match num_slices {
        1 => 0,
        2 => parity(MASK_O0),
        4 => parity(MASK_O0) | (parity(MASK_O1) << 1),
        8 => parity(MASK_O0) | (parity(MASK_O1) << 1) | (parity(MASK_O2) << 2),
        other => panic!("unsupported slice count {other} (expected 1, 2, 4 or 8)"),
    };
    SliceIndex(index)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_base_masks_offset_bits() {
        assert_eq!(PhysAddr(0x12345).line_base(64), PhysAddr(0x12340));
        assert_eq!(PhysAddr(0x12340).line_base(64), PhysAddr(0x12340));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn line_base_rejects_odd_sizes() {
        PhysAddr(0).line_base(48);
    }

    #[test]
    fn single_slice_is_always_zero() {
        for a in (0..1 << 20).step_by(4096) {
            assert_eq!(slice_hash(PhysAddr(a), 1), SliceIndex(0));
        }
    }

    #[test]
    fn slice_hash_is_within_range() {
        for &slices in &[2usize, 4, 8] {
            for a in (0..1u64 << 22).step_by(64) {
                assert!(slice_hash(PhysAddr(a), slices).0 < slices);
            }
        }
    }

    #[test]
    fn slice_hash_distributes_roughly_evenly() {
        let slices = 8;
        let mut counts = vec![0usize; slices];
        for a in (0..1u64 << 24).step_by(64) {
            counts[slice_hash(PhysAddr(a), slices).0] += 1;
        }
        let total: usize = counts.iter().sum();
        let expected = total / slices;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                c > expected / 2 && c < expected * 2,
                "slice {i} count {c} far from expected {expected}"
            );
        }
    }

    #[test]
    fn slice_hash_ignores_line_offset_bits() {
        for a in (0..1u64 << 20).step_by(4096) {
            let base = slice_hash(PhysAddr(a), 8);
            for off in 1..64 {
                assert_eq!(slice_hash(PhysAddr(a + off), 8), base);
            }
        }
    }

    #[test]
    #[should_panic(expected = "unsupported slice count")]
    fn slice_hash_rejects_unsupported_counts() {
        slice_hash(PhysAddr(0), 3);
    }
}
