//! The cache model of §2.3 of the paper and the set-associative machinery the
//! simulated hardware is built from.
//!
//! The central abstraction is the [`CacheSet`]: the labelled transition system
//! induced by a replacement policy (Definition 2.3, Figure 2), storing memory
//! [`Block`]s and answering accesses with [`HitMiss`].  On top of it this
//! crate provides the pieces needed to assemble a realistic memory hierarchy:
//!
//! * [`CacheGeometry`] and address mapping — line offsets, set indices and
//!   the XOR-folding slice hash used by Intel last-level caches;
//! * [`CacheLevel`] — a full level (all slices × sets) with invalidation;
//! * [`Hierarchy`] — an inclusive L1/L2/L3 hierarchy that reports per-level
//!   hits and misses for each access;
//! * [`SetDueling`] — the leader/follower adaptive-policy mechanism observed
//!   on the simulated last-level caches (Appendix B of the paper).
//!
//! # Example
//!
//! ```
//! use cache::{Block, CacheSet, HitMiss};
//! use policies::PolicyKind;
//!
//! let policy = PolicyKind::Lru.build(2).unwrap();
//! let mut set = CacheSet::filled(policy, (0..2).map(Block::new));
//! // Figure 1 of the paper: A B C A produces Hit Hit Miss Miss on a 2-way
//! // LRU set that already contains A and B.
//! let outcomes: Vec<HitMiss> = [0, 1, 2, 0]
//!     .iter()
//!     .map(|&b| set.access(Block::new(b)).outcome())
//!     .collect();
//! assert_eq!(
//!     outcomes,
//!     vec![HitMiss::Hit, HitMiss::Hit, HitMiss::Miss, HitMiss::Miss]
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod address;
mod dueling;
mod geometry;
mod hierarchy;
mod level;
mod set;

pub use address::{slice_hash, PhysAddr, SetIndex, SliceIndex};
pub use dueling::{
    haswell_like_roles, skylake_like_roles, DuelingCache, DuelingRole, SetDueling, SetDuelingConfig,
};
pub use geometry::CacheGeometry;
pub use hierarchy::{AccessOutcome, Hierarchy, HierarchyConfig, LevelId};
pub use level::{CacheLevel, LevelConfig};
pub use set::{AccessResult, Block, CacheSet, HitMiss};
