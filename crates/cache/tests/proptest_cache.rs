//! Property-based tests for the cache model (§2.3 invariants).

use cache::{AccessResult, Block, CacheGeometry, CacheSet, HitMiss, PhysAddr};
use policies::PolicyKind;
use proptest::prelude::*;

fn set_strategy() -> impl Strategy<Value = (PolicyKind, usize, Vec<u64>)> {
    (2usize..=8).prop_flat_map(|assoc| {
        let kinds: Vec<PolicyKind> = PolicyKind::ALL_DETERMINISTIC
            .into_iter()
            .filter(|k| k.supports_associativity(assoc))
            .collect();
        (
            proptest::sample::select(kinds),
            Just(assoc),
            proptest::collection::vec(0u64..16, 1..80),
        )
    })
}

proptest! {
    /// Figure 2 invariants: the content never stores the same block twice,
    /// a hit is reported iff the block was present, and the evicted block
    /// (if any) really was present before the miss.
    #[test]
    fn cache_set_content_is_consistent((kind, assoc, accesses) in set_strategy()) {
        let mut set = CacheSet::filled(
            kind.build(assoc).unwrap(),
            (100..100 + assoc as u64).map(Block::new),
        );
        for &raw in &accesses {
            let block = Block::new(raw);
            let was_present = set.contains(block);
            let result = set.access(block);
            match result {
                AccessResult::Hit { .. } => prop_assert!(was_present),
                AccessResult::Miss { evicted, .. } => {
                    prop_assert!(!was_present);
                    if let Some(victim) = evicted {
                        prop_assert_ne!(victim, block);
                    }
                }
            }
            // The accessed block is now present, and the content holds no
            // duplicates.
            prop_assert!(set.contains(block));
            let mut blocks: Vec<_> = set.content().iter().filter_map(|b| *b).collect();
            let before = blocks.len();
            blocks.sort();
            blocks.dedup();
            prop_assert_eq!(blocks.len(), before, "duplicate block in the set");
        }
    }

    /// Accessing the same block twice in a row always hits the second time.
    #[test]
    fn immediate_reaccess_hits((kind, assoc, accesses) in set_strategy()) {
        let mut set = CacheSet::filled(
            kind.build(assoc).unwrap(),
            (100..100 + assoc as u64).map(Block::new),
        );
        for &raw in &accesses {
            set.access(Block::new(raw));
            prop_assert_eq!(set.access(Block::new(raw)).outcome(), HitMiss::Hit);
        }
    }

    /// Geometry: congruence is an equivalence relation decided by the flat
    /// index, and line offsets never change the mapping.
    #[test]
    fn congruence_ignores_line_offsets(
        addr in 0u64..(1 << 30),
        offset in 0u64..64,
        sets in prop_oneof![Just(64usize), Just(512), Just(1024), Just(2048)],
        slices in prop_oneof![Just(1usize), Just(4), Just(8)],
    ) {
        let geometry = CacheGeometry::new(8, sets, slices, 64);
        let base = PhysAddr(addr & !63);
        prop_assert!(geometry.congruent(base, PhysAddr(base.0 + offset)));
        prop_assert!(geometry.flat_index(base) < geometry.total_sets());
    }

    /// An address is congruent with itself shifted by a whole number of
    /// "set strides" only if the slice hash also agrees — i.e. congruence
    /// implies equal set index bits.
    #[test]
    fn congruent_addresses_share_set_index_bits(
        addr in 0u64..(1 << 28),
        stride_count in 1u64..64,
    ) {
        let geometry = CacheGeometry::new(16, 1024, 8, 64);
        let base = PhysAddr(addr & !63);
        let other = PhysAddr(base.0 + stride_count * 1024 * 64);
        if geometry.congruent(base, other) {
            prop_assert_eq!(geometry.set_index(base), geometry.set_index(other));
        }
    }
}
