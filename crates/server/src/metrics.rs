//! Global daemon metrics, shared by every session and worker.
//!
//! Every instrument lives in one [`obs::Registry`], so the `metrics` command
//! renders the entire daemon state in one pass; the typed handles below keep
//! the hot paths free of name lookups.  Counters are monotonic; the two
//! up/down quantities (active sessions, busy workers) are saturating
//! [`Gauge`]s, so an unpaired decrement clamps at zero instead of wrapping.

use std::sync::Arc;

use obs::{Counter, Gauge, Histogram, Registry};

/// Typed handles into the daemon's one metrics registry.
#[derive(Debug)]
pub struct ServerMetrics {
    /// The registry behind every handle below, rendered by the `metrics`
    /// command (Prometheus text + typed snapshots).
    pub registry: Arc<Registry>,
    /// Sessions accepted since startup.
    pub sessions_total: Arc<Counter>,
    /// Sessions currently connected.
    pub sessions_active: Arc<Gauge>,
    /// Concrete queries answered (store hits + backend runs).
    pub queries: Arc<Counter>,
    /// Concrete queries answered from the shared cross-session store.
    pub store_hits: Arc<Counter>,
    /// Queries executed by the backend pool.
    pub backend_queries: Arc<Counter>,
    /// Learning jobs spawned.
    pub jobs_spawned: Arc<Counter>,
    /// Workers currently executing backend work.
    pub busy_workers: Arc<Gauge>,
    /// Poisoned locks recovered on the request path: a session or worker
    /// panicked mid-operation and the daemon degraded to an error response
    /// instead of letting the poison cascade.
    pub lock_poisoned: Arc<Counter>,
    /// Wall-clock nanoseconds spent handling each protocol request.
    pub request_ns: Arc<Histogram>,
}

impl Default for ServerMetrics {
    fn default() -> Self {
        ServerMetrics::new()
    }
}

impl ServerMetrics {
    /// Creates a fresh registry and registers every daemon instrument.
    pub fn new() -> Self {
        let registry = Arc::new(Registry::new());
        ServerMetrics {
            sessions_total: registry.counter("cqd_sessions_total"),
            sessions_active: registry.gauge("cqd_sessions_active"),
            queries: registry.counter("cqd_queries_total"),
            store_hits: registry.counter("cqd_store_hits_total"),
            backend_queries: registry.counter("cqd_backend_queries_total"),
            jobs_spawned: registry.counter("cqd_jobs_spawned_total"),
            busy_workers: registry.gauge("cqd_busy_workers"),
            lock_poisoned: registry.counter("cqd_lock_poisoned_total"),
            request_ns: registry.histogram("cqd_request_ns"),
            registry,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauges_saturate_instead_of_wrapping() {
        let metrics = ServerMetrics::new();
        metrics.sessions_active.inc();
        metrics.sessions_active.dec();
        // The unpaired decrement clamps at zero — a daemon bug must not turn
        // the session count into u64::MAX.
        metrics.sessions_active.dec();
        assert_eq!(metrics.sessions_active.get(), 0);
    }

    #[test]
    fn the_registry_exposes_every_instrument() {
        let metrics = ServerMetrics::new();
        metrics.queries.add(3);
        metrics.request_ns.record(1_000);
        let names: Vec<String> = metrics
            .registry
            .snapshot()
            .into_iter()
            .map(|m| m.name)
            .collect();
        for expected in [
            "cqd_sessions_total",
            "cqd_sessions_active",
            "cqd_queries_total",
            "cqd_store_hits_total",
            "cqd_backend_queries_total",
            "cqd_jobs_spawned_total",
            "cqd_busy_workers",
            "cqd_lock_poisoned_total",
            "cqd_request_ns",
        ] {
            assert!(names.iter().any(|n| n == expected), "missing {expected}");
        }
    }
}
