//! Global daemon counters, shared by every session and worker.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters of one daemon instance.  All fields are relaxed
/// atomics: they feed the `stats` command, not any synchronization.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Sessions accepted since startup.
    pub sessions_total: AtomicU64,
    /// Sessions currently connected.
    pub sessions_active: AtomicU64,
    /// Concrete queries answered (store hits + backend runs).
    pub queries: AtomicU64,
    /// Concrete queries answered from the shared cross-session store.
    pub store_hits: AtomicU64,
    /// Queries executed by the backend pool.
    pub backend_queries: AtomicU64,
    /// Learning jobs spawned.
    pub jobs_spawned: AtomicU64,
    /// Workers currently executing backend work.
    pub busy_workers: AtomicU64,
}

impl ServerMetrics {
    /// Relaxed increment helper.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Relaxed decrement helper (saturating at zero is the caller's duty:
    /// every `sub` must pair with an earlier `add`).
    pub fn sub(counter: &AtomicU64, n: u64) {
        counter.fetch_sub(n, Ordering::Relaxed);
    }

    /// Relaxed read helper.
    pub fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }
}
