//! The `cqd` wire protocol: newline-delimited JSON requests and responses.
//!
//! Every message is one JSON object on one line.  Requests carry a `"cmd"`
//! discriminator, responses a `"resp"` discriminator; all numbers fit in
//! 2^53 so the hand-rolled [`Json`] layer round-trips them exactly.  The
//! protocol is strictly request→response *except* for `wait`, which streams
//! zero or more non-final `status` lines (`"final": false`) before the
//! terminal one (`"final": true`) — a client must keep reading until the
//! final line.
//!
//! | Request (`cmd`) | Fields | Response (`resp`) |
//! |---|---|---|
//! | `hello` | — | `hello` (server, proto, workers) |
//! | `target` | full [`SessionSpec`] | `done` |
//! | `query` | `mbl` | `outcomes` |
//! | `batch` | `exprs` | `batch` (groups per expression) |
//! | `repl` | `line` (REPL command string) | `done` or `outcomes` |
//! | `learn` | `spec` (`POLICY@ASSOC`) | `job` (id) |
//! | `replay` | `spec`, `generator`, `accesses`, `lines`, `seed`, `job`? | `replay` |
//! | `map` | `model`, `seed`, `cat`?, `slice`, `sets` | `map` (the per-set cache map) |
//! | `job` | `id` | `status` |
//! | `wait` | `id` | `status`* … `status` (`final: true`) |
//! | `stats` | — | `stats` (global + session + store namespaces) |
//! | `metrics` | — | `metrics` (Prometheus text + typed snapshots) |
//! | `persist` | — | `done` (store flushed and snapshotted) |
//! | `quit` | — | `bye` |
//!
//! Any request can instead produce an `error` response.

use std::fmt;

use crate::json::Json;

/// Version of the wire protocol described by this module.
///
/// Version history: 1 = the original PR 3 protocol; 2 = `policy` session
/// specs, live `hit_rate` in job status, `store_conflicts` + per-namespace
/// entry counts in `stats` (the additions are hard decode errors for a v1
/// client, so the handshake must signal the change); 3 = noise-robustness —
/// `+noise(...)` policy specs and the engine's vote-margin counters
/// (`votes`, `vote_escalations`, `vote_unsettled`,
/// `vote_min_margin_permille`) in `stats`; 4 = trace replay — the `replay`
/// command evaluates a policy (and optionally the learned machine of a
/// finished `learn` job) under synthetic memory traffic server-side; 5 =
/// cartography — the `map` command sweeps the sets of a simulated adaptive
/// last-level cache server-side (leader detection, per-group learning
/// through the shared store, follower flip probes) and returns the per-set
/// policy map; 6 = observability — the `metrics` command exposes the
/// daemon's metrics registry (Prometheus-style text plus typed snapshots),
/// `stats` gains `uptime_ms`, request-latency quantiles and per-namespace
/// store byte estimates, and job status lines carry the campaign's
/// per-phase query/duration profile; 7 = durability — the `persist` command
/// flushes and snapshots the daemon's durable store on demand, `stats`
/// gains store size/eviction and persistence counters (`store_entries`,
/// `store_evictions`, `persist_appended`, `persist_dropped`,
/// `persist_snapshots`, `persist_replayed`, `lock_poisoned`), and
/// per-namespace rows gain lifetime `hits`/`misses`.
pub const PROTOCOL_VERSION: u64 = 7;

/// A malformed protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError(pub String);

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "protocol error: {}", self.0)
    }
}

impl std::error::Error for ProtoError {}

fn err(message: impl Into<String>) -> ProtoError {
    ProtoError(message.into())
}

/// The complete backend/target configuration of one session, as sent with
/// the `target` command.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSpec {
    /// CPU model name (`haswell`, `skylake`, `kabylake`).
    pub model: String,
    /// Seed of the simulated machine.  Must stay below 2^53: the JSON wire
    /// format stores numbers as `f64`, so larger seeds would be silently
    /// rounded in transit.
    pub seed: u64,
    /// Target cache level (`L1`, `L2`, `L3`).
    pub level: String,
    /// Target set index within the slice.
    pub set: u64,
    /// Target slice index.
    pub slice: u64,
    /// Intel CAT restriction of the last-level cache, if any.
    pub cat: Option<u64>,
    /// Repetitions of the majority vote.
    pub reps: u64,
    /// Reset sequence (`F+R` or a custom MBL refill).
    pub reset: String,
    /// Target a bare simulated replacement policy (`POLICY@ASSOC`, e.g.
    /// `LRU@4`) instead of a simulated machine.  When set, the hardware
    /// fields above are ignored and the session shares the query-store
    /// namespace that `learn` campaigns for the same policy fill.  An
    /// optional `+noise(flip=R,drop=R,evict=R,seed=N,reps=N)` suffix (rates
    /// as fractions, e.g. `LRU@4+noise(flip=0.05,seed=1)`) injects seeded
    /// faults that the server-side engine absorbs by majority voting.
    pub policy: Option<String>,
}

impl Default for SessionSpec {
    fn default() -> Self {
        SessionSpec {
            model: "skylake".to_string(),
            seed: 7,
            level: "L1".to_string(),
            set: 0,
            slice: 0,
            cat: None,
            reps: 3,
            reset: "F+R".to_string(),
            policy: None,
        }
    }
}

/// A request from a client to the daemon.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Handshake: ask for server identity and protocol version.
    Hello,
    /// Replace the session's backend/target configuration.
    Target(SessionSpec),
    /// Expand and run one MBL expression.
    Query {
        /// The MBL expression.
        mbl: String,
    },
    /// Run several MBL expressions (the batch mode of §4.2).
    Batch {
        /// The expressions, answered in order.
        exprs: Vec<String>,
    },
    /// One line of the interactive REPL protocol (shared with `mbl_repl`).
    Repl {
        /// The command line.
        line: String,
    },
    /// Start an asynchronous learning job.
    Learn {
        /// `POLICY@ASSOC`, e.g. `LRU@2`, with the same optional
        /// `+noise(...)` suffix as [`SessionSpec::policy`] for a
        /// noise-robustness campaign.
        spec: String,
    },
    /// Replay a synthetic trace against a policy simulator — and, when
    /// `job` names a finished learning job, differentially against its
    /// learned machine.
    Replay {
        /// `POLICY@ASSOC`, e.g. `LRU@2` (noise suffixes are rejected:
        /// replay needs a deterministic ground truth).
        spec: String,
        /// Trace generator name (`sequential`, `strided`, `zipfian`,
        /// `pointer-chase`).
        generator: String,
        /// Number of accesses to generate (clamped server-side).
        accesses: u64,
        /// Working-set size in cache lines (clamped server-side).
        lines: u64,
        /// Generator seed.
        seed: u64,
        /// Id of a finished `learn` job whose machine should be replayed
        /// differentially against the simulator.
        job: Option<u64>,
    },
    /// Map the sets of a simulated adaptive last-level cache server-side:
    /// classify every set (leader detection), learn each leader group's
    /// policy through the shared store, and flip-probe every follower for
    /// statistical evidence of adaptivity.
    ///
    /// The sweep should cover leaders of *both* duel classes (on the
    /// Skylake-like layout, ≥ 34 sets): the disambiguation drives work by
    /// making leaders vote the duel in a known direction, so a sweep that
    /// excludes every leader of one class cannot separate followers from
    /// leaders of the resident polarity — exactly like the published
    /// experiment, which sweeps the whole cache.
    Map {
        /// CPU model name (`haswell`, `skylake`, `kabylake`).
        model: String,
        /// Seed of the simulated machine.
        seed: u64,
        /// Intel CAT restriction of the last-level cache, if any.
        cat: Option<u64>,
        /// The slice whose sets are mapped.
        slice: u64,
        /// Number of sets to map, starting at index 0 (clamped server-side).
        sets: u64,
    },
    /// Poll the status of a learning job.
    Job {
        /// The job id returned by `learn`.
        id: u64,
    },
    /// Stream status lines until a learning job finishes.
    Wait {
        /// The job id returned by `learn`.
        id: u64,
    },
    /// Global and per-session metrics.
    Stats,
    /// The daemon's metrics registry: Prometheus-style text plus typed
    /// snapshots of every counter, gauge and latency histogram.
    Metrics,
    /// Flush the durable store's record log and write a compacted snapshot.
    /// A no-op (still `done`) on a daemon running without `--store-dir`.
    Persist,
    /// Close the session.
    Quit,
}

/// One executed concrete query, as sent over the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireOutcome {
    /// The rendered concrete query (after MBL expansion).
    pub query: String,
    /// Hit/miss pattern of the profiled accesses (`H` / `M` per access).
    pub pattern: String,
    /// Whether all repetitions agreed.
    pub consistent: bool,
    /// Whether the answer came from the shared cross-session store.
    pub cached: bool,
}

/// One L* phase of a learning campaign, as reported with a terminal job
/// status: its name, the membership queries it issued, and its wall-clock
/// share in milliseconds.  The query counts of a status line's phases sum
/// exactly to its `queries` total (the learner's phase regions partition the
/// run).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WirePhase {
    /// Phase name (`table_fill`, `closure`, `equivalence`,
    /// `identification`).
    pub name: String,
    /// Membership queries attributed to the phase.
    pub queries: u64,
    /// Wall-clock milliseconds spent in the phase.
    pub millis: u64,
}

/// One metric of the daemon's registry, in flat typed form (the structured
/// counterpart of the Prometheus text a `metrics` response also carries).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireMetric {
    /// Metric name (e.g. `cqd_request_ns`).
    pub name: String,
    /// `counter`, `gauge` or `histogram`.
    pub kind: String,
    /// Counter/gauge value; for histograms, the sample count.
    pub value: u64,
    /// Sum of recorded samples (histograms only; 0 otherwise).
    pub sum: u64,
    /// Smallest recorded sample (histograms only; 0 otherwise).
    pub min: u64,
    /// Largest recorded sample (histograms only; 0 otherwise).
    pub max: u64,
    /// Median estimate (histograms only; 0 otherwise).
    pub p50: u64,
    /// 90th-percentile estimate (histograms only; 0 otherwise).
    pub p90: u64,
    /// 99th-percentile estimate (histograms only; 0 otherwise).
    pub p99: u64,
}

/// Status snapshot of a learning job.
#[derive(Debug, Clone, PartialEq)]
pub struct WireJobStatus {
    /// The job id.
    pub id: u64,
    /// `running`, `done` or `failed`.
    pub state: String,
    /// Human-readable detail (identification result or error).
    pub detail: String,
    /// Whether this is the last status line of a `wait` stream.
    pub finished: bool,
    /// States of the current hypothesis (live while running, final when
    /// done, 0 when failed).
    pub states: u64,
    /// Membership queries issued so far (live while running).
    pub queries: u64,
    /// Memoization hit rate: the campaign's query-store namespace while
    /// running, the learner's prefix-trie cache once done.
    pub hit_rate: f64,
    /// Wall-clock milliseconds since the job started.
    pub millis: u64,
    /// Per-phase query/duration breakdown of the campaign (populated on
    /// `done` status lines; empty while running and on failures).
    pub phases: Vec<WirePhase>,
}

/// Global daemon counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WireStats {
    /// Sessions currently connected.
    pub sessions_active: u64,
    /// Sessions accepted since startup.
    pub sessions_total: u64,
    /// Concrete queries answered (store hits + backend runs).
    pub queries: u64,
    /// Concrete queries served from the shared cross-session store; the
    /// remainder (`queries - store_hits`) missed and ran on the backend.
    pub store_hits: u64,
    /// Queries executed by the backend pool.
    pub backend_queries: u64,
    /// Learning jobs spawned.
    pub jobs_spawned: u64,
    /// Learning jobs in a terminal state.
    pub jobs_finished: u64,
    /// Workers currently executing backend work (backend occupancy).
    pub busy_workers: u64,
    /// Size of the worker pool.
    pub workers: u64,
    /// Store recordings dropped because they contradicted an earlier answer
    /// or were malformed (the nondeterminism signal of §7.1).
    pub store_conflicts: u64,
    /// Queries that went through the engine's repetition/majority vote —
    /// session backends and learning campaigns alike (the tally lives on the
    /// shared store).
    pub votes: u64,
    /// Backend executions those votes consumed (repetitions and escalations
    /// included): `vote_executions / votes` is the effective repetition
    /// count of the voted traffic.
    pub vote_executions: u64,
    /// Voted queries that needed at least one escalation round.
    pub vote_escalations: u64,
    /// Voted queries whose margin never settled (answered but not stored).
    pub vote_unsettled: u64,
    /// Worst final vote margin observed, in permille (1000 until the first
    /// vote).
    pub vote_min_margin_permille: u64,
    /// Milliseconds since the daemon started.
    pub uptime_ms: u64,
    /// Median request-handling latency, in nanoseconds (0 until the first
    /// request is served).
    pub request_p50_ns: u64,
    /// 99th-percentile request-handling latency, in nanoseconds.
    pub request_p99_ns: u64,
    /// Worst request-handling latency observed, in nanoseconds.
    pub request_max_ns: u64,
    /// Entries (trie nodes) currently held by the shared store.
    pub store_entries: u64,
    /// Namespaces cleared by the store's entry cap since startup (0 when
    /// the store is unbounded).
    pub store_evictions: u64,
    /// Records handed to the store's persistence writer (0 when the daemon
    /// runs without `--store-dir`).
    pub persist_appended: u64,
    /// Appends lost to a full writer queue or write errors — durability
    /// gaps healed by the next snapshot, never in-memory data loss.
    pub persist_dropped: u64,
    /// Compacted snapshots written since startup.
    pub persist_snapshots: u64,
    /// Records replayed from disk when the store opened.
    pub persist_replayed: u64,
    /// Poisoned locks recovered on the request path (a worker or session
    /// panicked mid-operation; the daemon degrades instead of dying).
    pub lock_poisoned: u64,
}

/// One query-store namespace (a distinct backend configuration) and its
/// size, as reported by the `stats` command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireNamespace {
    /// The rendered backend configuration.
    pub name: String,
    /// Cached access prefixes (trie nodes) in the namespace.
    pub entries: u64,
    /// Estimated heap footprint of the namespace's trie, in bytes.
    pub bytes: u64,
    /// Lifetime lookups served from this namespace (survives eviction).
    pub hits: u64,
    /// Lifetime lookups that missed in this namespace.
    pub misses: u64,
}

impl WireStats {
    /// Fraction of answered queries served from the shared store.
    pub fn hit_rate(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.store_hits as f64 / self.queries as f64
        }
    }
}

/// Result of a server-side trace replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireReplay {
    /// The policy spec that was replayed.
    pub spec: String,
    /// The trace generator that produced the traffic.
    pub generator: String,
    /// Accesses replayed through the simulator.
    pub accesses: u64,
    /// Simulator hits.
    pub sim_hits: u64,
    /// Simulator misses.
    pub sim_misses: u64,
    /// Simulator evictions.
    pub sim_evictions: u64,
    /// States of the learned machine replayed differentially (0 when the
    /// request named no job and only the simulator ran).
    pub machine_states: u64,
    /// Learned-machine hits (0 without a machine).
    pub machine_hits: u64,
    /// Learned-machine misses (0 without a machine).
    pub machine_misses: u64,
    /// Whether simulator and machine disagreed on any access.
    pub diverged: bool,
    /// Rendered first divergence (empty when none).
    pub divergence: String,
}

/// One leader group of a `map` response: its class, the set the campaign
/// learned, and the learning outcome in flat wire form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireMapGroup {
    /// Detection class (`thrash-vulnerable` or `thrash-resistant`).
    pub class: String,
    /// Number of sets in the group.
    pub members: u64,
    /// Set index of the learned representative.
    pub representative_set: u64,
    /// Slice index of the learned representative.
    pub representative_slice: u64,
    /// The query-store namespace the campaign filled (the dedupe key).
    pub namespace: String,
    /// Outcome kind (`learned`, `not-deterministic` or `failed`).
    pub outcome: String,
    /// States of the learned automaton (0 unless `learned`).
    pub states: u64,
    /// Membership queries the campaign issued (0 unless `learned`).
    pub queries: u64,
    /// Library policy the automaton was identified as (empty if none).
    pub identified: String,
    /// Statistical disagreement in permille (0 unless `not-deterministic`).
    pub disagreement_permille: u64,
    /// Human-readable detail: the non-determinism evidence or the error.
    pub detail: String,
}

/// One mapped set of a `map` response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireMapSet {
    /// Set index within the slice.
    pub set: u64,
    /// Slice index.
    pub slice: u64,
    /// Detection class (`thrash-vulnerable`, `thrash-resistant` or
    /// `adaptive`).
    pub class: String,
    /// Verdict kind (`fixed`, `fixed-nondet`, `adaptive` or `unmapped`).
    pub verdict: String,
    /// Identified policy of a `fixed` set (empty if unidentified).
    pub policy: String,
    /// States of a `fixed` set's learned automaton (0 otherwise).
    pub states: u64,
    /// Statistical evidence in permille: vote disagreement for
    /// `fixed-nondet`, flip-probe disagreement for `adaptive` (0 otherwise).
    pub disagreement_permille: u64,
    /// The rendered error of an `unmapped` set (empty otherwise).
    pub detail: String,
}

/// The complete cache map returned by a `map` request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireCacheMap {
    /// Short name of the mapped CPU model.
    pub model: String,
    /// The mapped cache level (`L3`).
    pub level: String,
    /// CAT restriction in effect during the campaign, if any.
    pub cat: Option<u64>,
    /// Per-group learning outcomes.
    pub groups: Vec<WireMapGroup>,
    /// One entry per mapped set.
    pub sets: Vec<WireMapSet>,
}

/// Counters of one session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WireSessionStats {
    /// Concrete queries answered for this session.
    pub queries: u64,
    /// Of those, answers served from the shared store.
    pub store_hits: u64,
}

/// A response from the daemon to a client.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Handshake reply.
    Hello {
        /// Server name (`cqd`).
        server: String,
        /// Protocol version.
        proto: u64,
        /// Worker-pool size.
        workers: u64,
    },
    /// Generic success with a human-readable message.
    Done {
        /// The message.
        message: String,
    },
    /// Results of one MBL expression.
    Outcomes {
        /// One entry per expanded concrete query.
        results: Vec<WireOutcome>,
    },
    /// Results of a batch, grouped per expression.
    Batch {
        /// One group per expression, in request order.
        groups: Vec<Vec<WireOutcome>>,
    },
    /// A learning job was started.
    JobStarted {
        /// Its id.
        id: u64,
    },
    /// A learning-job status line.
    JobStatus(WireJobStatus),
    /// Result of a `replay` request.
    Replay(WireReplay),
    /// Result of a `map` request.
    Map(WireCacheMap),
    /// Metrics reply.
    Stats {
        /// Daemon-wide counters.
        global: WireStats,
        /// This session's counters.
        session: WireSessionStats,
        /// Per-namespace entry counts of the shared query store.
        namespaces: Vec<WireNamespace>,
    },
    /// The daemon's metrics registry.
    Metrics {
        /// Prometheus-style text exposition of every metric.
        text: String,
        /// Typed snapshots of the same metrics, sorted by name.
        metrics: Vec<WireMetric>,
    },
    /// The request failed.
    Error {
        /// Why.
        message: String,
    },
    /// Session closed.
    Bye,
}

fn spec_to_json(spec: &SessionSpec) -> Vec<(&'static str, Json)> {
    vec![
        ("model", Json::str(&spec.model)),
        ("seed", Json::num(spec.seed)),
        ("level", Json::str(&spec.level)),
        ("set", Json::num(spec.set)),
        ("slice", Json::num(spec.slice)),
        ("cat", spec.cat.map_or(Json::Null, Json::num)),
        ("reps", Json::num(spec.reps)),
        ("reset", Json::str(&spec.reset)),
        (
            "policy",
            spec.policy.as_deref().map_or(Json::Null, Json::str),
        ),
    ]
}

fn get_str(value: &Json, key: &str) -> Result<String, ProtoError> {
    value
        .get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| err(format!("missing string field '{key}'")))
}

fn get_u64(value: &Json, key: &str) -> Result<u64, ProtoError> {
    value
        .get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| err(format!("missing integer field '{key}'")))
}

fn get_bool(value: &Json, key: &str) -> Result<bool, ProtoError> {
    value
        .get(key)
        .and_then(Json::as_bool)
        .ok_or_else(|| err(format!("missing boolean field '{key}'")))
}

fn get_f64(value: &Json, key: &str) -> Result<f64, ProtoError> {
    value
        .get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| err(format!("missing number field '{key}'")))
}

fn spec_from_json(value: &Json) -> Result<SessionSpec, ProtoError> {
    let cat = match value.get("cat") {
        None | Some(Json::Null) => None,
        Some(v) => Some(v.as_u64().ok_or_else(|| err("'cat' must be an integer"))?),
    };
    let policy = match value.get("policy") {
        None | Some(Json::Null) => None,
        Some(v) => Some(
            v.as_str()
                .map(str::to_string)
                .ok_or_else(|| err("'policy' must be a string"))?,
        ),
    };
    Ok(SessionSpec {
        model: get_str(value, "model")?,
        seed: get_u64(value, "seed")?,
        level: get_str(value, "level")?,
        set: get_u64(value, "set")?,
        slice: get_u64(value, "slice")?,
        cat,
        reps: get_u64(value, "reps")?,
        reset: get_str(value, "reset")?,
        policy,
    })
}

fn outcome_to_json(outcome: &WireOutcome) -> Json {
    Json::obj(vec![
        ("query", Json::str(&outcome.query)),
        ("pattern", Json::str(&outcome.pattern)),
        ("consistent", Json::Bool(outcome.consistent)),
        ("cached", Json::Bool(outcome.cached)),
    ])
}

fn outcome_from_json(value: &Json) -> Result<WireOutcome, ProtoError> {
    Ok(WireOutcome {
        query: get_str(value, "query")?,
        pattern: get_str(value, "pattern")?,
        consistent: get_bool(value, "consistent")?,
        cached: get_bool(value, "cached")?,
    })
}

fn status_to_json(status: &WireJobStatus) -> Vec<(&'static str, Json)> {
    vec![
        ("id", Json::num(status.id)),
        ("state", Json::str(&status.state)),
        ("detail", Json::str(&status.detail)),
        ("final", Json::Bool(status.finished)),
        ("states", Json::num(status.states)),
        ("queries", Json::num(status.queries)),
        ("hit_rate", Json::Num(status.hit_rate)),
        ("millis", Json::num(status.millis)),
        (
            "phases",
            Json::Arr(
                status
                    .phases
                    .iter()
                    .map(|p| {
                        Json::obj(vec![
                            ("name", Json::str(&p.name)),
                            ("queries", Json::num(p.queries)),
                            ("millis", Json::num(p.millis)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]
}

fn status_from_json(value: &Json) -> Result<WireJobStatus, ProtoError> {
    let phases = value
        .get("phases")
        .and_then(Json::as_arr)
        .ok_or_else(|| err("missing array field 'phases'"))?
        .iter()
        .map(|p| {
            Ok(WirePhase {
                name: get_str(p, "name")?,
                queries: get_u64(p, "queries")?,
                millis: get_u64(p, "millis")?,
            })
        })
        .collect::<Result<Vec<_>, ProtoError>>()?;
    Ok(WireJobStatus {
        id: get_u64(value, "id")?,
        state: get_str(value, "state")?,
        detail: get_str(value, "detail")?,
        finished: get_bool(value, "final")?,
        states: get_u64(value, "states")?,
        queries: get_u64(value, "queries")?,
        hit_rate: get_f64(value, "hit_rate")?,
        millis: get_u64(value, "millis")?,
        phases,
    })
}

fn metric_to_json(metric: &WireMetric) -> Json {
    Json::obj(vec![
        ("name", Json::str(&metric.name)),
        ("kind", Json::str(&metric.kind)),
        ("value", Json::num(metric.value)),
        ("sum", Json::num(metric.sum)),
        ("min", Json::num(metric.min)),
        ("max", Json::num(metric.max)),
        ("p50", Json::num(metric.p50)),
        ("p90", Json::num(metric.p90)),
        ("p99", Json::num(metric.p99)),
    ])
}

fn metric_from_json(value: &Json) -> Result<WireMetric, ProtoError> {
    Ok(WireMetric {
        name: get_str(value, "name")?,
        kind: get_str(value, "kind")?,
        value: get_u64(value, "value")?,
        sum: get_u64(value, "sum")?,
        min: get_u64(value, "min")?,
        max: get_u64(value, "max")?,
        p50: get_u64(value, "p50")?,
        p90: get_u64(value, "p90")?,
        p99: get_u64(value, "p99")?,
    })
}

fn map_group_to_json(group: &WireMapGroup) -> Json {
    Json::obj(vec![
        ("class", Json::str(&group.class)),
        ("members", Json::num(group.members)),
        ("representative_set", Json::num(group.representative_set)),
        (
            "representative_slice",
            Json::num(group.representative_slice),
        ),
        ("namespace", Json::str(&group.namespace)),
        ("outcome", Json::str(&group.outcome)),
        ("states", Json::num(group.states)),
        ("queries", Json::num(group.queries)),
        ("identified", Json::str(&group.identified)),
        (
            "disagreement_permille",
            Json::num(group.disagreement_permille),
        ),
        ("detail", Json::str(&group.detail)),
    ])
}

fn map_group_from_json(value: &Json) -> Result<WireMapGroup, ProtoError> {
    Ok(WireMapGroup {
        class: get_str(value, "class")?,
        members: get_u64(value, "members")?,
        representative_set: get_u64(value, "representative_set")?,
        representative_slice: get_u64(value, "representative_slice")?,
        namespace: get_str(value, "namespace")?,
        outcome: get_str(value, "outcome")?,
        states: get_u64(value, "states")?,
        queries: get_u64(value, "queries")?,
        identified: get_str(value, "identified")?,
        disagreement_permille: get_u64(value, "disagreement_permille")?,
        detail: get_str(value, "detail")?,
    })
}

fn map_set_to_json(set: &WireMapSet) -> Json {
    Json::obj(vec![
        ("set", Json::num(set.set)),
        ("slice", Json::num(set.slice)),
        ("class", Json::str(&set.class)),
        ("verdict", Json::str(&set.verdict)),
        ("policy", Json::str(&set.policy)),
        ("states", Json::num(set.states)),
        (
            "disagreement_permille",
            Json::num(set.disagreement_permille),
        ),
        ("detail", Json::str(&set.detail)),
    ])
}

fn map_set_from_json(value: &Json) -> Result<WireMapSet, ProtoError> {
    Ok(WireMapSet {
        set: get_u64(value, "set")?,
        slice: get_u64(value, "slice")?,
        class: get_str(value, "class")?,
        verdict: get_str(value, "verdict")?,
        policy: get_str(value, "policy")?,
        states: get_u64(value, "states")?,
        disagreement_permille: get_u64(value, "disagreement_permille")?,
        detail: get_str(value, "detail")?,
    })
}

fn stats_to_json(stats: &WireStats) -> Json {
    Json::obj(vec![
        ("sessions_active", Json::num(stats.sessions_active)),
        ("sessions_total", Json::num(stats.sessions_total)),
        ("queries", Json::num(stats.queries)),
        ("store_hits", Json::num(stats.store_hits)),
        ("backend_queries", Json::num(stats.backend_queries)),
        ("uptime_ms", Json::num(stats.uptime_ms)),
        ("request_p50_ns", Json::num(stats.request_p50_ns)),
        ("request_p99_ns", Json::num(stats.request_p99_ns)),
        ("request_max_ns", Json::num(stats.request_max_ns)),
        ("jobs_spawned", Json::num(stats.jobs_spawned)),
        ("jobs_finished", Json::num(stats.jobs_finished)),
        ("busy_workers", Json::num(stats.busy_workers)),
        ("workers", Json::num(stats.workers)),
        ("store_conflicts", Json::num(stats.store_conflicts)),
        ("store_entries", Json::num(stats.store_entries)),
        ("store_evictions", Json::num(stats.store_evictions)),
        ("persist_appended", Json::num(stats.persist_appended)),
        ("persist_dropped", Json::num(stats.persist_dropped)),
        ("persist_snapshots", Json::num(stats.persist_snapshots)),
        ("persist_replayed", Json::num(stats.persist_replayed)),
        ("lock_poisoned", Json::num(stats.lock_poisoned)),
        ("votes", Json::num(stats.votes)),
        ("vote_executions", Json::num(stats.vote_executions)),
        ("vote_escalations", Json::num(stats.vote_escalations)),
        ("vote_unsettled", Json::num(stats.vote_unsettled)),
        (
            "vote_min_margin_permille",
            Json::num(stats.vote_min_margin_permille),
        ),
    ])
}

fn stats_from_json(value: &Json) -> Result<WireStats, ProtoError> {
    Ok(WireStats {
        sessions_active: get_u64(value, "sessions_active")?,
        sessions_total: get_u64(value, "sessions_total")?,
        queries: get_u64(value, "queries")?,
        store_hits: get_u64(value, "store_hits")?,
        backend_queries: get_u64(value, "backend_queries")?,
        uptime_ms: get_u64(value, "uptime_ms")?,
        request_p50_ns: get_u64(value, "request_p50_ns")?,
        request_p99_ns: get_u64(value, "request_p99_ns")?,
        request_max_ns: get_u64(value, "request_max_ns")?,
        jobs_spawned: get_u64(value, "jobs_spawned")?,
        jobs_finished: get_u64(value, "jobs_finished")?,
        busy_workers: get_u64(value, "busy_workers")?,
        workers: get_u64(value, "workers")?,
        store_conflicts: get_u64(value, "store_conflicts")?,
        store_entries: get_u64(value, "store_entries")?,
        store_evictions: get_u64(value, "store_evictions")?,
        persist_appended: get_u64(value, "persist_appended")?,
        persist_dropped: get_u64(value, "persist_dropped")?,
        persist_snapshots: get_u64(value, "persist_snapshots")?,
        persist_replayed: get_u64(value, "persist_replayed")?,
        lock_poisoned: get_u64(value, "lock_poisoned")?,
        votes: get_u64(value, "votes")?,
        vote_executions: get_u64(value, "vote_executions")?,
        vote_escalations: get_u64(value, "vote_escalations")?,
        vote_unsettled: get_u64(value, "vote_unsettled")?,
        vote_min_margin_permille: get_u64(value, "vote_min_margin_permille")?,
    })
}

/// Encodes a request as one JSON line (without the trailing newline).
pub fn encode_request(request: &Request) -> String {
    let json = match request {
        Request::Hello => Json::obj(vec![("cmd", Json::str("hello"))]),
        Request::Target(spec) => {
            let mut pairs = vec![("cmd", Json::str("target"))];
            pairs.extend(spec_to_json(spec));
            Json::obj(pairs)
        }
        Request::Query { mbl } => {
            Json::obj(vec![("cmd", Json::str("query")), ("mbl", Json::str(mbl))])
        }
        Request::Batch { exprs } => Json::obj(vec![
            ("cmd", Json::str("batch")),
            ("exprs", Json::Arr(exprs.iter().map(Json::str).collect())),
        ]),
        Request::Repl { line } => {
            Json::obj(vec![("cmd", Json::str("repl")), ("line", Json::str(line))])
        }
        Request::Learn { spec } => {
            Json::obj(vec![("cmd", Json::str("learn")), ("spec", Json::str(spec))])
        }
        Request::Replay {
            spec,
            generator,
            accesses,
            lines,
            seed,
            job,
        } => Json::obj(vec![
            ("cmd", Json::str("replay")),
            ("spec", Json::str(spec)),
            ("generator", Json::str(generator)),
            ("accesses", Json::num(*accesses)),
            ("lines", Json::num(*lines)),
            ("seed", Json::num(*seed)),
            ("job", job.map_or(Json::Null, Json::num)),
        ]),
        Request::Map {
            model,
            seed,
            cat,
            slice,
            sets,
        } => Json::obj(vec![
            ("cmd", Json::str("map")),
            ("model", Json::str(model)),
            ("seed", Json::num(*seed)),
            ("cat", cat.map_or(Json::Null, Json::num)),
            ("slice", Json::num(*slice)),
            ("sets", Json::num(*sets)),
        ]),
        Request::Job { id } => Json::obj(vec![("cmd", Json::str("job")), ("id", Json::num(*id))]),
        Request::Wait { id } => Json::obj(vec![("cmd", Json::str("wait")), ("id", Json::num(*id))]),
        Request::Stats => Json::obj(vec![("cmd", Json::str("stats"))]),
        Request::Metrics => Json::obj(vec![("cmd", Json::str("metrics"))]),
        Request::Persist => Json::obj(vec![("cmd", Json::str("persist"))]),
        Request::Quit => Json::obj(vec![("cmd", Json::str("quit"))]),
    };
    json.render()
}

/// Decodes one request line.
///
/// # Errors
///
/// Returns a [`ProtoError`] for malformed JSON, unknown commands, or missing
/// fields.
pub fn decode_request(line: &str) -> Result<Request, ProtoError> {
    let value = Json::parse(line.trim()).map_err(|e| err(e.to_string()))?;
    let cmd = get_str(&value, "cmd")?;
    match cmd.as_str() {
        "hello" => Ok(Request::Hello),
        "target" => Ok(Request::Target(spec_from_json(&value)?)),
        "query" => Ok(Request::Query {
            mbl: get_str(&value, "mbl")?,
        }),
        "batch" => {
            let exprs = value
                .get("exprs")
                .and_then(Json::as_arr)
                .ok_or_else(|| err("missing array field 'exprs'"))?;
            let exprs = exprs
                .iter()
                .map(|e| {
                    e.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| err("'exprs' must contain strings"))
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Request::Batch { exprs })
        }
        "repl" => Ok(Request::Repl {
            line: get_str(&value, "line")?,
        }),
        "learn" => Ok(Request::Learn {
            spec: get_str(&value, "spec")?,
        }),
        "replay" => {
            let job = match value.get("job") {
                None | Some(Json::Null) => None,
                Some(v) => Some(v.as_u64().ok_or_else(|| err("'job' must be an integer"))?),
            };
            Ok(Request::Replay {
                spec: get_str(&value, "spec")?,
                generator: get_str(&value, "generator")?,
                accesses: get_u64(&value, "accesses")?,
                lines: get_u64(&value, "lines")?,
                seed: get_u64(&value, "seed")?,
                job,
            })
        }
        "map" => {
            let cat = match value.get("cat") {
                None | Some(Json::Null) => None,
                Some(v) => Some(v.as_u64().ok_or_else(|| err("'cat' must be an integer"))?),
            };
            Ok(Request::Map {
                model: get_str(&value, "model")?,
                seed: get_u64(&value, "seed")?,
                cat,
                slice: get_u64(&value, "slice")?,
                sets: get_u64(&value, "sets")?,
            })
        }
        "job" => Ok(Request::Job {
            id: get_u64(&value, "id")?,
        }),
        "wait" => Ok(Request::Wait {
            id: get_u64(&value, "id")?,
        }),
        "stats" => Ok(Request::Stats),
        "metrics" => Ok(Request::Metrics),
        "persist" => Ok(Request::Persist),
        "quit" => Ok(Request::Quit),
        other => Err(err(format!("unknown command '{other}'"))),
    }
}

/// Encodes a response as one JSON line (without the trailing newline).
pub fn encode_response(response: &Response) -> String {
    let json = match response {
        Response::Hello {
            server,
            proto,
            workers,
        } => Json::obj(vec![
            ("resp", Json::str("hello")),
            ("server", Json::str(server)),
            ("proto", Json::num(*proto)),
            ("workers", Json::num(*workers)),
        ]),
        Response::Done { message } => Json::obj(vec![
            ("resp", Json::str("done")),
            ("message", Json::str(message)),
        ]),
        Response::Outcomes { results } => Json::obj(vec![
            ("resp", Json::str("outcomes")),
            (
                "results",
                Json::Arr(results.iter().map(outcome_to_json).collect()),
            ),
        ]),
        Response::Batch { groups } => Json::obj(vec![
            ("resp", Json::str("batch")),
            (
                "groups",
                Json::Arr(
                    groups
                        .iter()
                        .map(|g| Json::Arr(g.iter().map(outcome_to_json).collect()))
                        .collect(),
                ),
            ),
        ]),
        Response::JobStarted { id } => {
            Json::obj(vec![("resp", Json::str("job")), ("id", Json::num(*id))])
        }
        Response::JobStatus(status) => {
            let mut pairs = vec![("resp", Json::str("status"))];
            pairs.extend(status_to_json(status));
            Json::obj(pairs)
        }
        Response::Replay(replay) => Json::obj(vec![
            ("resp", Json::str("replay")),
            ("spec", Json::str(&replay.spec)),
            ("generator", Json::str(&replay.generator)),
            ("accesses", Json::num(replay.accesses)),
            ("sim_hits", Json::num(replay.sim_hits)),
            ("sim_misses", Json::num(replay.sim_misses)),
            ("sim_evictions", Json::num(replay.sim_evictions)),
            ("machine_states", Json::num(replay.machine_states)),
            ("machine_hits", Json::num(replay.machine_hits)),
            ("machine_misses", Json::num(replay.machine_misses)),
            ("diverged", Json::Bool(replay.diverged)),
            ("divergence", Json::str(&replay.divergence)),
        ]),
        Response::Map(map) => Json::obj(vec![
            ("resp", Json::str("map")),
            ("model", Json::str(&map.model)),
            ("level", Json::str(&map.level)),
            ("cat", map.cat.map_or(Json::Null, Json::num)),
            (
                "groups",
                Json::Arr(map.groups.iter().map(map_group_to_json).collect()),
            ),
            (
                "sets",
                Json::Arr(map.sets.iter().map(map_set_to_json).collect()),
            ),
        ]),
        Response::Stats {
            global,
            session,
            namespaces,
        } => Json::obj(vec![
            ("resp", Json::str("stats")),
            ("global", stats_to_json(global)),
            (
                "session",
                Json::obj(vec![
                    ("queries", Json::num(session.queries)),
                    ("store_hits", Json::num(session.store_hits)),
                ]),
            ),
            (
                "namespaces",
                Json::Arr(
                    namespaces
                        .iter()
                        .map(|ns| {
                            Json::obj(vec![
                                ("name", Json::str(&ns.name)),
                                ("entries", Json::num(ns.entries)),
                                ("bytes", Json::num(ns.bytes)),
                                ("hits", Json::num(ns.hits)),
                                ("misses", Json::num(ns.misses)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
        Response::Metrics { text, metrics } => Json::obj(vec![
            ("resp", Json::str("metrics")),
            ("text", Json::str(text)),
            (
                "metrics",
                Json::Arr(metrics.iter().map(metric_to_json).collect()),
            ),
        ]),
        Response::Error { message } => Json::obj(vec![
            ("resp", Json::str("error")),
            ("message", Json::str(message)),
        ]),
        Response::Bye => Json::obj(vec![("resp", Json::str("bye"))]),
    };
    json.render()
}

/// Decodes one response line.
///
/// # Errors
///
/// Returns a [`ProtoError`] for malformed JSON, unknown response kinds, or
/// missing fields.
pub fn decode_response(line: &str) -> Result<Response, ProtoError> {
    let value = Json::parse(line.trim()).map_err(|e| err(e.to_string()))?;
    let resp = get_str(&value, "resp")?;
    match resp.as_str() {
        "hello" => Ok(Response::Hello {
            server: get_str(&value, "server")?,
            proto: get_u64(&value, "proto")?,
            workers: get_u64(&value, "workers")?,
        }),
        "done" => Ok(Response::Done {
            message: get_str(&value, "message")?,
        }),
        "outcomes" => {
            let results = value
                .get("results")
                .and_then(Json::as_arr)
                .ok_or_else(|| err("missing array field 'results'"))?;
            Ok(Response::Outcomes {
                results: results
                    .iter()
                    .map(outcome_from_json)
                    .collect::<Result<Vec<_>, _>>()?,
            })
        }
        "batch" => {
            let groups = value
                .get("groups")
                .and_then(Json::as_arr)
                .ok_or_else(|| err("missing array field 'groups'"))?;
            let groups = groups
                .iter()
                .map(|g| {
                    g.as_arr()
                        .ok_or_else(|| err("'groups' must contain arrays"))?
                        .iter()
                        .map(outcome_from_json)
                        .collect::<Result<Vec<_>, _>>()
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Response::Batch { groups })
        }
        "job" => Ok(Response::JobStarted {
            id: get_u64(&value, "id")?,
        }),
        "status" => Ok(Response::JobStatus(status_from_json(&value)?)),
        "replay" => Ok(Response::Replay(WireReplay {
            spec: get_str(&value, "spec")?,
            generator: get_str(&value, "generator")?,
            accesses: get_u64(&value, "accesses")?,
            sim_hits: get_u64(&value, "sim_hits")?,
            sim_misses: get_u64(&value, "sim_misses")?,
            sim_evictions: get_u64(&value, "sim_evictions")?,
            machine_states: get_u64(&value, "machine_states")?,
            machine_hits: get_u64(&value, "machine_hits")?,
            machine_misses: get_u64(&value, "machine_misses")?,
            diverged: get_bool(&value, "diverged")?,
            divergence: get_str(&value, "divergence")?,
        })),
        "map" => {
            let cat = match value.get("cat") {
                None | Some(Json::Null) => None,
                Some(v) => Some(v.as_u64().ok_or_else(|| err("'cat' must be an integer"))?),
            };
            let groups = value
                .get("groups")
                .and_then(Json::as_arr)
                .ok_or_else(|| err("missing array field 'groups'"))?
                .iter()
                .map(map_group_from_json)
                .collect::<Result<Vec<_>, _>>()?;
            let sets = value
                .get("sets")
                .and_then(Json::as_arr)
                .ok_or_else(|| err("missing array field 'sets'"))?
                .iter()
                .map(map_set_from_json)
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Response::Map(WireCacheMap {
                model: get_str(&value, "model")?,
                level: get_str(&value, "level")?,
                cat,
                groups,
                sets,
            }))
        }
        "stats" => {
            let global = value
                .get("global")
                .ok_or_else(|| err("missing object field 'global'"))?;
            let session = value
                .get("session")
                .ok_or_else(|| err("missing object field 'session'"))?;
            let namespaces = value
                .get("namespaces")
                .and_then(Json::as_arr)
                .ok_or_else(|| err("missing array field 'namespaces'"))?
                .iter()
                .map(|ns| {
                    Ok(WireNamespace {
                        name: get_str(ns, "name")?,
                        entries: get_u64(ns, "entries")?,
                        bytes: get_u64(ns, "bytes")?,
                        hits: get_u64(ns, "hits")?,
                        misses: get_u64(ns, "misses")?,
                    })
                })
                .collect::<Result<Vec<_>, ProtoError>>()?;
            Ok(Response::Stats {
                global: stats_from_json(global)?,
                session: WireSessionStats {
                    queries: get_u64(session, "queries")?,
                    store_hits: get_u64(session, "store_hits")?,
                },
                namespaces,
            })
        }
        "metrics" => {
            let metrics = value
                .get("metrics")
                .and_then(Json::as_arr)
                .ok_or_else(|| err("missing array field 'metrics'"))?
                .iter()
                .map(metric_from_json)
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Response::Metrics {
                text: get_str(&value, "text")?,
                metrics,
            })
        }
        "error" => Ok(Response::Error {
            message: get_str(&value, "message")?,
        }),
        "bye" => Ok(Response::Bye),
        other => Err(err(format!("unknown response '{other}'"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let requests = vec![
            Request::Hello,
            Request::Target(SessionSpec::default()),
            Request::Target(SessionSpec {
                model: "kabylake".into(),
                cat: Some(4),
                reset: "D C B A @".into(),
                ..SessionSpec::default()
            }),
            Request::Target(SessionSpec {
                policy: Some("LRU@4".into()),
                ..SessionSpec::default()
            }),
            Request::Query {
                mbl: "@ X _?".into(),
            },
            Request::Batch {
                exprs: vec!["A?".into(), "@ X A?".into()],
            },
            Request::Repl {
                line: "set 12".into(),
            },
            Request::Learn {
                spec: "LRU@2".into(),
            },
            Request::Replay {
                spec: "PLRU@4".into(),
                generator: "zipfian".into(),
                accesses: 100_000,
                lines: 256,
                seed: 7,
                job: None,
            },
            Request::Replay {
                spec: "LRU@2".into(),
                generator: "pointer-chase".into(),
                accesses: 5000,
                lines: 64,
                seed: 1,
                job: Some(2),
            },
            Request::Map {
                model: "skylake".into(),
                seed: 99,
                cat: Some(2),
                slice: 0,
                sets: 48,
            },
            Request::Map {
                model: "haswell".into(),
                seed: 7,
                cat: None,
                slice: 1,
                sets: 8,
            },
            Request::Job { id: 3 },
            Request::Wait { id: 9 },
            Request::Stats,
            Request::Metrics,
            Request::Persist,
            Request::Quit,
        ];
        for request in requests {
            let line = encode_request(&request);
            assert!(!line.contains('\n'));
            assert_eq!(decode_request(&line).unwrap(), request, "line: {line}");
        }
    }

    #[test]
    fn responses_round_trip() {
        let responses = vec![
            Response::Hello {
                server: "cqd".into(),
                proto: PROTOCOL_VERSION,
                workers: 4,
            },
            Response::Done {
                message: "target set".into(),
            },
            Response::Outcomes {
                results: vec![WireOutcome {
                    query: "A B C A?".into(),
                    pattern: "H".into(),
                    consistent: true,
                    cached: false,
                }],
            },
            Response::Batch {
                groups: vec![
                    vec![],
                    vec![WireOutcome {
                        query: "X?".into(),
                        pattern: "M".into(),
                        consistent: true,
                        cached: true,
                    }],
                ],
            },
            Response::JobStarted { id: 1 },
            Response::JobStatus(WireJobStatus {
                id: 1,
                state: "done".into(),
                detail: "identified as LRU".into(),
                finished: true,
                states: 24,
                queries: 7569,
                hit_rate: 0.75,
                millis: 31,
                phases: vec![
                    WirePhase {
                        name: "table_fill".into(),
                        queries: 5000,
                        millis: 20,
                    },
                    WirePhase {
                        name: "equivalence".into(),
                        queries: 2569,
                        millis: 11,
                    },
                ],
            }),
            Response::JobStatus(WireJobStatus {
                id: 2,
                state: "running".into(),
                detail: "closing table".into(),
                finished: false,
                states: 0,
                queries: 120,
                hit_rate: 0.0,
                millis: 2,
                phases: vec![],
            }),
            Response::Replay(WireReplay {
                spec: "LRU@2".into(),
                generator: "strided".into(),
                accesses: 100_000,
                sim_hits: 61_000,
                sim_misses: 39_000,
                sim_evictions: 39_000,
                machine_states: 2,
                machine_hits: 61_000,
                machine_misses: 39_000,
                diverged: false,
                divergence: String::new(),
            }),
            Response::Replay(WireReplay {
                spec: "MRU@4".into(),
                generator: "sequential".into(),
                accesses: 10,
                sim_hits: 1,
                sim_misses: 9,
                sim_evictions: 9,
                machine_states: 0,
                machine_hits: 0,
                machine_misses: 0,
                diverged: true,
                divergence: "access 3 (0xc0 in set 3): simulator Hit, machine Miss".into(),
            }),
            Response::Map(WireCacheMap {
                model: "skylake".into(),
                level: "L3".into(),
                cat: Some(2),
                groups: vec![WireMapGroup {
                    class: "thrash-vulnerable".into(),
                    members: 2,
                    representative_set: 0,
                    representative_slice: 0,
                    namespace: "skylake seed=99 cat=2 reset=F+R reps=5 L3 set=0 slice=0".into(),
                    outcome: "learned".into(),
                    states: 7,
                    queries: 641,
                    identified: "New2".into(),
                    disagreement_permille: 0,
                    detail: String::new(),
                }],
                sets: vec![
                    WireMapSet {
                        set: 0,
                        slice: 0,
                        class: "thrash-vulnerable".into(),
                        verdict: "fixed".into(),
                        policy: "New2".into(),
                        states: 7,
                        disagreement_permille: 0,
                        detail: String::new(),
                    },
                    WireMapSet {
                        set: 5,
                        slice: 0,
                        class: "adaptive".into(),
                        verdict: "adaptive".into(),
                        policy: String::new(),
                        states: 0,
                        disagreement_permille: 333,
                        detail: "flip probe disagreed".into(),
                    },
                ],
            }),
            Response::Map(WireCacheMap {
                model: "haswell".into(),
                level: "L3".into(),
                cat: None,
                groups: vec![],
                sets: vec![],
            }),
            Response::Stats {
                global: WireStats {
                    sessions_active: 2,
                    sessions_total: 5,
                    queries: 100,
                    store_hits: 60,
                    backend_queries: 40,
                    uptime_ms: 12_345,
                    request_p50_ns: 8_000,
                    request_p99_ns: 95_000,
                    request_max_ns: 120_000,
                    jobs_spawned: 1,
                    jobs_finished: 1,
                    busy_workers: 0,
                    workers: 4,
                    store_conflicts: 2,
                    store_entries: 47,
                    store_evictions: 1,
                    persist_appended: 88,
                    persist_dropped: 2,
                    persist_snapshots: 3,
                    persist_replayed: 41,
                    lock_poisoned: 0,
                    votes: 40,
                    vote_executions: 302,
                    vote_escalations: 3,
                    vote_unsettled: 1,
                    vote_min_margin_permille: 333,
                },
                session: WireSessionStats {
                    queries: 10,
                    store_hits: 4,
                },
                namespaces: vec![
                    WireNamespace {
                        name: "skylake seed=7 cat=- reset=F+R reps=3 L1 set=0 slice=0".into(),
                        entries: 40,
                        bytes: 2048,
                        hits: 61,
                        misses: 40,
                    },
                    WireNamespace {
                        name: "policy:LRU@4 reset=cc0 reps=1 L1 set=0 slice=0".into(),
                        entries: 7,
                        bytes: 384,
                        hits: 0,
                        misses: 7,
                    },
                ],
            },
            Response::Metrics {
                text: "# TYPE cqd_queries_total counter\ncqd_queries_total 100\n".into(),
                metrics: vec![
                    WireMetric {
                        name: "cqd_queries_total".into(),
                        kind: "counter".into(),
                        value: 100,
                        sum: 0,
                        min: 0,
                        max: 0,
                        p50: 0,
                        p90: 0,
                        p99: 0,
                    },
                    WireMetric {
                        name: "cqd_request_ns".into(),
                        kind: "histogram".into(),
                        value: 12,
                        sum: 96_000,
                        min: 4_000,
                        max: 20_000,
                        p50: 8_000,
                        p90: 18_000,
                        p99: 20_000,
                    },
                ],
            },
            Response::Error {
                message: "no such job".into(),
            },
            Response::Bye,
        ];
        for response in responses {
            let line = encode_response(&response);
            assert!(!line.contains('\n'));
            assert_eq!(decode_response(&line).unwrap(), response, "line: {line}");
        }
    }

    #[test]
    fn unknown_messages_are_rejected() {
        assert!(decode_request("{\"cmd\":\"mystery\"}").is_err());
        assert!(decode_request("{\"mbl\":\"A?\"}").is_err());
        assert!(decode_request("not json").is_err());
        assert!(decode_response("{\"resp\":\"mystery\"}").is_err());
        assert!(decode_response("{}").is_err());
    }

    #[test]
    fn hit_rate_is_derived_from_store_counters() {
        assert_eq!(WireStats::default().hit_rate(), 0.0);
        let stats = WireStats {
            queries: 4,
            store_hits: 3,
            ..WireStats::default()
        };
        assert!((stats.hit_rate() - 0.75).abs() < 1e-9);
    }
}
