//! The `cqd` daemon: a multi-session TCP frontend over the unified query
//! engine.
//!
//! Architecture (§4.2's service frontend, scaled to many clients):
//!
//! * an **accept loop** turns every TCP connection into a session thread
//!   speaking the newline-delimited JSON protocol of [`crate::proto`];
//! * each session holds a validated `ResolvedSpec` (backend + target
//!   configuration) and answers what it can without touching a backend:
//!   protocol chatter, configuration changes, and — crucially — every
//!   concrete query already memoized in the shared [`QueryStore`];
//! * store misses are routed to a fixed **worker pool** through a *bounded*
//!   channel: when all workers are busy and the queue is full, sessions
//!   block on `send`, which is the daemon's backpressure (clients see
//!   latency, the backend pool never sees unbounded queues);
//! * workers own the **backend pool** — one [`QueryEngine`] per backend
//!   identity (CPU model × seed × CAT restriction, or simulated policy),
//!   created lazily
//!   and serialized by a mutex, all sharing the daemon's one store: the
//!   engine *is* the concurrent implementation of the memoization layer,
//!   and the "scarce hardware" it multiplexes;
//! * `learn` requests spawn asynchronous [`polca::LearnJob`]s whose oracle
//!   runs through an engine over the **same shared store** — campaign
//!   answers land in the trie sessions are served from (and vice versa);
//!   sessions poll or stream live job progress without occupying a worker.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread;
use std::time::{Duration, Instant};

use cache::{HitMiss, LevelId};
use cachequery::{
    parse_command, Backend, Command, NoiseSpec, PolicyEvictor, QueryBackend, QueryConfig,
    QueryEngine, QueryStore, ResetSequence, StoreOptions, StoreSpace, Target, DEFAULT_NOISY_REPS,
    HELP_TEXT,
};
use hardware::{CpuModel, SimulatedCpu};
use mbl::{expand_query, render_query, Query};
use obs::{Counter, MetricKind, Recorder, WriterSink};
use polca::{
    map_cache, noisy_sim_backend, noisy_sim_config_for, CacheMap, CacheQueryOracle, GroupOutcome,
    JobStatus, LearnJob, LearnSetup, MapConfig, NoisySimBackend, PolicySimBackend, SetVerdict,
};
use policies::PolicyKind;

use trace::{differential_replay, generate, replay_policy, GeneratorKind, TraceSpec};

use crate::metrics::ServerMetrics;
use crate::proto::{
    decode_request, encode_response, Request, Response, SessionSpec, WireCacheMap, WireJobStatus,
    WireMapGroup, WireMapSet, WireMetric, WireNamespace, WireOutcome, WirePhase, WireReplay,
    WireSessionStats, WireStats, PROTOCOL_VERSION,
};

/// Configuration of a daemon instance.
#[derive(Debug, Clone)]
pub struct CqdConfig {
    /// Address to bind (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Size of the backend worker pool.
    pub workers: usize,
    /// Capacity of the bounded work queue; once full, sessions block
    /// (backpressure).
    pub queue_depth: usize,
    /// Worker threads each learning job may use (keep 1 to not starve
    /// query traffic).
    pub learn_workers: usize,
    /// Largest associativity accepted by the `learn` command (and by
    /// `policy:` session targets).
    pub max_learn_assoc: usize,
    /// Largest number of concrete queries one MBL expression may expand to.
    pub max_expansions: usize,
    /// When set, the daemon appends structured span events (one JSON object
    /// per line) covering request handling, engine batches and learning
    /// campaigns to this file.
    pub trace_log: Option<PathBuf>,
    /// When set, the shared query store is durable: answers are appended to
    /// a record log in this directory, compacted into snapshots, and
    /// replayed on the next start — so a restarted daemon serves yesterday's
    /// campaign from memory instead of re-executing it.
    pub store_dir: Option<PathBuf>,
    /// When set, the shared store holds at most this many entries, evicting
    /// whole namespaces chosen by [`CqdConfig::store_evict`].
    pub store_max_entries: Option<u64>,
    /// Eviction policy spec for a bounded store (`POLICY` or `POLICY@WAYS`,
    /// e.g. `lru`, `srrip-fp@8`); defaults to `lru@16`.
    pub store_evict: Option<String>,
}

impl Default for CqdConfig {
    fn default() -> Self {
        CqdConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_depth: 64,
            learn_workers: 1,
            max_learn_assoc: 4,
            max_expansions: 4096,
            trace_log: None,
            store_dir: None,
            store_max_entries: None,
            store_evict: None,
        }
    }
}

/// Locks a daemon mutex, recovering from poison instead of propagating it:
/// the panicking holder has already unwound and the guarded data (maps,
/// lists, counters) is still structurally valid, so degrading one request to
/// an error beats turning a single thread's panic into a daemon-wide outage.
/// Every recovery bumps `cqd_lock_poisoned_total`.
fn lock_unpoisoned<'a, T>(mutex: &'a Mutex<T>, poisoned: &Counter) -> MutexGuard<'a, T> {
    mutex.lock().unwrap_or_else(|e| {
        poisoned.inc();
        e.into_inner()
    })
}

/// How often blocked reads wake up to check for shutdown.
const POLL_INTERVAL: Duration = Duration::from_millis(50);
/// Upper bound on one request line; longer lines close the session.
const MAX_REQUEST_BYTES: usize = 1 << 20;
/// How often `wait` emits a non-final status line.
const WAIT_STATUS_INTERVAL: Duration = Duration::from_millis(200);

/// The backend half of a resolved session spec: which scarce oracle answers
/// this session's queries.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) enum ResolvedBackend {
    /// A simulated machine (the §7 path).
    Hardware {
        /// CPU model.
        model: CpuModel,
        /// Machine seed.
        seed: u64,
        /// CAT restriction of the last-level cache.
        cat: Option<usize>,
    },
    /// A bare simulated replacement policy (the §6 path, shared with
    /// `learn` campaigns), optionally decorated with seeded fault injection
    /// (the noise-robustness path).
    Policy {
        /// The policy.
        kind: PolicyKind,
        /// Its associativity.
        assoc: usize,
        /// Fault rates plus the repetition count the engine votes with, for
        /// `POLICY@ASSOC+noise(...)` specs.
        noise: Option<(NoiseSpec, usize)>,
    },
}

/// A session's backend/target configuration after validation.
#[derive(Debug, Clone)]
pub(crate) struct ResolvedSpec {
    pub(crate) backend: ResolvedBackend,
    pub(crate) reset: ResetSequence,
    pub(crate) reps: usize,
    pub(crate) target: Target,
    /// Effective associativity of the target (after CAT).
    pub(crate) assoc: usize,
}

impl ResolvedSpec {
    /// The memoization namespace this spec shares with every engine driving
    /// an identically-configured backend.  For hardware specs this renders
    /// byte-identically to `Backend`'s own
    /// [`QueryBackend::config`](cachequery::QueryBackend::config), which is
    /// what makes session-side store lookups and worker-side engine
    /// recordings meet in one namespace.
    pub(crate) fn config(&self) -> QueryConfig {
        match &self.backend {
            ResolvedBackend::Hardware { model, seed, cat } => QueryConfig {
                backend: format!(
                    "{} seed={seed} cat={}",
                    model.short_name(),
                    cat.map_or_else(|| "-".to_string(), |ways| ways.to_string())
                ),
                reset: self.reset.to_string(),
                reps: self.reps,
                target: self.target,
            },
            ResolvedBackend::Policy { kind, assoc, noise } => match noise {
                None => PolicySimBackend::config_for(*kind, *assoc),
                Some((spec, reps)) => noisy_sim_config_for(*kind, *assoc, spec, *reps),
            },
        }
    }
}

fn parse_model(name: &str) -> Option<CpuModel> {
    match name.to_ascii_lowercase().as_str() {
        "haswell" => Some(CpuModel::HaswellI7_4790),
        "skylake" => Some(CpuModel::SkylakeI5_6500),
        "kabylake" | "kaby-lake" => Some(CpuModel::KabyLakeI7_8550U),
        _ => None,
    }
}

/// Parses the `+noise(key=value,…)` suffix of a policy spec into a
/// [`NoiseSpec`] plus the engine's repetition count.  Rates are fractions
/// (`flip=0.05`), stored as permille; `seed` and `reps` are integers; every
/// key is optional.
fn parse_noise_args(args: &str) -> Result<(NoiseSpec, usize), String> {
    let mut spec = NoiseSpec {
        flip_permille: 0,
        drop_permille: 0,
        evict_permille: 0,
        seed: 0,
    };
    let mut reps = DEFAULT_NOISY_REPS;
    for part in args.split(',').filter(|p| !p.trim().is_empty()) {
        let (key, value) = part
            .split_once('=')
            .ok_or_else(|| format!("bad noise argument '{part}' (expected key=value)"))?;
        let (key, value) = (key.trim(), value.trim());
        let permille = || -> Result<u32, String> {
            let rate: f64 = value
                .parse()
                .map_err(|_| format!("bad noise rate '{value}'"))?;
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("noise rate '{value}' outside [0, 1]"));
            }
            Ok((rate * 1000.0).round() as u32)
        };
        match key {
            "flip" => spec.flip_permille = permille()?,
            "drop" => spec.drop_permille = permille()?,
            "evict" => spec.evict_permille = permille()?,
            "seed" => {
                spec.seed = value
                    .parse()
                    .map_err(|_| format!("bad noise seed '{value}'"))?;
            }
            "reps" => {
                reps = value
                    .parse::<usize>()
                    .map_err(|_| format!("bad noise reps '{value}'"))?
                    .max(1);
            }
            other => return Err(format!("unknown noise key '{other}'")),
        }
    }
    Ok((spec, reps))
}

/// A parsed policy spec: the policy, its associativity, and the optional
/// noise decoration (fault rates + engine repetition count).
type PolicySpec = (PolicyKind, usize, Option<(NoiseSpec, usize)>);

/// Parses a `POLICY@ASSOC[+noise(...)]` spec against an associativity limit.
pub(crate) fn parse_policy_spec(spec: &str, max_assoc: usize) -> Result<PolicySpec, String> {
    let (base, noise) = match spec.split_once("+noise(") {
        None => (spec, None),
        Some((base, rest)) => {
            let args = rest
                .strip_suffix(')')
                .ok_or_else(|| format!("unterminated noise spec in '{spec}'"))?;
            (base, Some(parse_noise_args(args)?))
        }
    };
    let (name, assoc) = base
        .split_once('@')
        .ok_or_else(|| format!("bad policy spec '{base}' (expected POLICY@ASSOC)"))?;
    let kind = name
        .trim()
        .parse::<PolicyKind>()
        .map_err(|e| e.to_string())?;
    let assoc: usize = assoc
        .trim()
        .parse()
        .map_err(|_| format!("bad associativity in '{base}'"))?;
    if assoc == 0 || assoc > max_assoc {
        return Err(format!(
            "associativity {assoc} out of range (this server simulates policies up to {max_assoc})"
        ));
    }
    if !kind.supports_associativity(assoc) {
        return Err(format!("{kind} does not support associativity {assoc}"));
    }
    Ok((kind, assoc, noise))
}

pub(crate) fn resolve(spec: &SessionSpec) -> Result<ResolvedSpec, String> {
    resolve_with_limits(spec, CqdConfig::default().max_learn_assoc)
}

pub(crate) fn resolve_with_limits(
    spec: &SessionSpec,
    max_policy_assoc: usize,
) -> Result<ResolvedSpec, String> {
    if let Some(policy) = &spec.policy {
        // Policy sessions are fully described by POLICY@ASSOC (+ optional
        // noise): the simulation is exact (one canonical reset; repetitions
        // only when faults are injected), and the hardware fields are
        // ignored so that every client lands in the one namespace `learn`
        // campaigns for the same spec fill.
        let (kind, assoc, noise) = parse_policy_spec(policy, max_policy_assoc)?;
        let config = match &noise {
            None => PolicySimBackend::config_for(kind, assoc),
            Some((noise_spec, reps)) => noisy_sim_config_for(kind, assoc, noise_spec, *reps),
        };
        return Ok(ResolvedSpec {
            backend: ResolvedBackend::Policy { kind, assoc, noise },
            reset: ResetSequence::Custom(config.reset.clone()),
            reps: config.reps,
            target: config.target,
            assoc,
        });
    }
    let model = parse_model(&spec.model).ok_or_else(|| {
        format!(
            "unknown CPU model '{}' (haswell|skylake|kabylake)",
            spec.model
        )
    })?;
    let level = LevelId::parse(&spec.level)
        .ok_or_else(|| format!("unknown cache level '{}' (L1|L2|L3)", spec.level))?;
    let cpu_spec = model.spec();
    let geometry = cpu_spec
        .level(level)
        .ok_or_else(|| format!("model has no {level}"))?
        .geometry;
    if spec.set as usize >= geometry.sets_per_slice {
        return Err(format!(
            "set {} out of range (level has {} sets per slice)",
            spec.set, geometry.sets_per_slice
        ));
    }
    if spec.slice as usize >= geometry.slices {
        return Err(format!(
            "slice {} out of range (level has {} slices)",
            spec.slice, geometry.slices
        ));
    }
    let cat = match spec.cat {
        None => None,
        Some(ways) => {
            if !cpu_spec.supports_cat {
                return Err(format!("{} does not support Intel CAT", cpu_spec.name));
            }
            let l3 = cpu_spec
                .level(LevelId::L3)
                .expect("all modelled CPUs have an L3")
                .geometry;
            if ways == 0 || ways as usize > l3.associativity {
                return Err(format!(
                    "CAT ways {ways} out of range (L3 has {} ways)",
                    l3.associativity
                ));
            }
            Some(ways as usize)
        }
    };
    let assoc = if level == LevelId::L3 {
        cat.unwrap_or(geometry.associativity)
    } else {
        geometry.associativity
    };
    // Mirror the backend's repetition rounding so equal effective settings
    // share one store namespace.
    let reps = {
        let r = (spec.reps as usize).max(1);
        if r.is_multiple_of(2) {
            r + 1
        } else {
            r
        }
    };
    let reset = if spec.reset.eq_ignore_ascii_case("f+r") {
        ResetSequence::FlushRefill
    } else {
        ResetSequence::Custom(spec.reset.clone())
    };
    // Reject unparseable/ambiguous reset sequences now — the backend assumes
    // they were validated when set.
    reset
        .refill_query(assoc)
        .map_err(|e| format!("bad reset sequence: {e}"))?;
    Ok(ResolvedSpec {
        backend: ResolvedBackend::Hardware {
            model,
            seed: spec.seed,
            cat,
        },
        reset,
        reps,
        target: Target::new(level, spec.set as usize, spec.slice as usize),
        assoc,
    })
}

/// Either kind of pooled scarce oracle, behind the one [`QueryBackend`]
/// interface the engine multiplexes.  The hardware variant is boxed: it
/// carries a whole simulated machine (memory pools, page tables), dwarfing
/// the policy variant.
#[derive(Debug)]
enum AnyBackend {
    Hardware(Box<Backend>),
    Policy(PolicySimBackend),
    Noisy(NoisySimBackend),
}

impl QueryBackend for AnyBackend {
    fn execute(&mut self, query: &Query) -> Result<(Vec<HitMiss>, bool), cachequery::BackendError> {
        match self {
            AnyBackend::Hardware(backend) => backend.execute(query),
            AnyBackend::Policy(backend) => backend.execute(query),
            AnyBackend::Noisy(backend) => backend.execute(query),
        }
    }

    fn execute_batch(
        &mut self,
        queries: &[Query],
    ) -> Result<Vec<(Vec<HitMiss>, bool)>, cachequery::BackendError> {
        // Forwarded so a daemon batch reaches each pooled backend's native
        // bulk path instead of the default per-query loop.
        match self {
            AnyBackend::Hardware(backend) => backend.execute_batch(queries),
            AnyBackend::Policy(backend) => backend.execute_batch(queries),
            AnyBackend::Noisy(backend) => backend.execute_batch(queries),
        }
    }

    fn config(&self) -> Result<QueryConfig, cachequery::BackendError> {
        match self {
            AnyBackend::Hardware(backend) => backend.config(),
            AnyBackend::Policy(backend) => backend.config(),
            AnyBackend::Noisy(backend) => backend.config(),
        }
    }

    fn associativity(&self) -> Result<usize, cachequery::BackendError> {
        match self {
            AnyBackend::Hardware(backend) => QueryBackend::associativity(backend),
            AnyBackend::Policy(backend) => backend.associativity(),
            AnyBackend::Noisy(backend) => backend.associativity(),
        }
    }
}

/// One lazily-created, mutex-serialized engine of the pool.
#[derive(Debug)]
struct PooledBackend {
    engine: QueryEngine<AnyBackend>,
    /// The `(target, reps, reset)` currently applied, to skip redundant
    /// (and expensive: re-calibration) reconfiguration.
    applied: Option<(Target, usize, String)>,
}

impl PooledBackend {
    fn configure(&mut self, spec: &ResolvedSpec) -> Result<(), String> {
        let AnyBackend::Hardware(backend) = self.engine.backend_mut() else {
            // Policy backends have exactly one configuration.
            return Ok(());
        };
        let wanted = (spec.target, spec.reps, spec.reset.to_string());
        if self.applied.as_ref() == Some(&wanted) {
            return Ok(());
        }
        backend.set_repetitions(spec.reps);
        backend.set_reset_sequence(spec.reset.clone());
        if backend.target() != Some(spec.target) {
            backend
                .select_target(spec.target)
                .map_err(|e| e.to_string())?;
        }
        self.applied = Some(wanted);
        Ok(())
    }
}

/// The identity of one pooled backend.
type InstanceKey = ResolvedBackend;

/// The backend pool: one engine per backend identity, all sharing the
/// daemon's query store.
#[derive(Debug, Default)]
struct BackendPool {
    instances: Mutex<HashMap<InstanceKey, Arc<Mutex<PooledBackend>>>>,
}

impl BackendPool {
    fn instance(
        &self,
        spec: &ResolvedSpec,
        store: &Arc<QueryStore>,
        recorder: &Option<Arc<Recorder>>,
        poisoned: &Counter,
    ) -> Result<Arc<Mutex<PooledBackend>>, String> {
        let key = spec.backend.clone();
        let mut instances = lock_unpoisoned(&self.instances, poisoned);
        if let Some(instance) = instances.get(&key) {
            return Ok(Arc::clone(instance));
        }
        let backend = match &spec.backend {
            ResolvedBackend::Hardware { model, seed, cat } => {
                let cpu = SimulatedCpu::new(*model, *seed);
                let mut backend = Backend::new(cpu);
                if let Some(ways) = cat {
                    backend.apply_cat(*ways).map_err(|e| e.to_string())?;
                }
                AnyBackend::Hardware(Box::new(backend))
            }
            ResolvedBackend::Policy { kind, assoc, noise } => match noise {
                None => AnyBackend::Policy(
                    PolicySimBackend::new(*kind, *assoc).map_err(|e| e.to_string())?,
                ),
                Some((noise_spec, reps)) => AnyBackend::Noisy(
                    noisy_sim_backend(*kind, *assoc, *noise_spec)
                        .map_err(|e| e.to_string())?
                        .with_repetitions(*reps),
                ),
            },
        };
        // The engine shares the daemon-wide store: one memoization layer,
        // one source of hit-rate truth, across sessions, workers and learn
        // jobs alike.
        let mut engine = QueryEngine::with_store(backend, Arc::clone(store));
        engine.set_recorder(recorder.clone());
        let instance = Arc::new(Mutex::new(PooledBackend {
            engine,
            applied: None,
        }));
        instances.insert(key, Arc::clone(&instance));
        Ok(instance)
    }

    fn len(&self, poisoned: &Counter) -> usize {
        lock_unpoisoned(&self.instances, poisoned).len()
    }
}

/// A unit of backend work: concrete queries that missed the shared store,
/// tagged with their position in the session's result vector.
struct WorkItem {
    spec: ResolvedSpec,
    queries: Vec<(usize, Query)>,
    reply: mpsc::Sender<Result<Vec<(usize, WireOutcome)>, String>>,
}

/// State shared by the accept loop, sessions and workers.
#[derive(Debug)]
struct Shared {
    config: CqdConfig,
    store: Arc<QueryStore>,
    metrics: ServerMetrics,
    /// Structured span tracing, present only when the daemon was configured
    /// with a trace log.  Every query path (sessions, workers, learning
    /// campaigns) hangs its spans off this one recorder.
    recorder: Option<Arc<Recorder>>,
    started: Instant,
    pool: BackendPool,
    jobs: Mutex<HashMap<u64, LearnJob>>,
    next_job_id: AtomicU64,
    shutdown: AtomicBool,
    sessions: Mutex<Vec<thread::JoinHandle<()>>>,
}

impl Shared {
    fn global_stats(&self) -> WireStats {
        let jobs = lock_unpoisoned(&self.jobs, &self.metrics.lock_poisoned);
        let jobs_finished = jobs.values().filter(|j| j.status().is_terminal()).count() as u64;
        let votes = self.store.vote_stats();
        let persist = self.store.persist_stats();
        let latency = self.metrics.request_ns.snapshot();
        WireStats {
            sessions_active: self.metrics.sessions_active.get(),
            sessions_total: self.metrics.sessions_total.get(),
            queries: self.metrics.queries.get(),
            store_hits: self.metrics.store_hits.get(),
            backend_queries: self.metrics.backend_queries.get(),
            uptime_ms: self.started.elapsed().as_millis() as u64,
            request_p50_ns: latency.p50,
            request_p99_ns: latency.p99,
            request_max_ns: latency.max,
            jobs_spawned: self.metrics.jobs_spawned.get(),
            jobs_finished,
            busy_workers: self.metrics.busy_workers.get(),
            workers: self.config.workers as u64,
            store_conflicts: self.store.conflicts(),
            store_entries: self.store.entries(),
            store_evictions: self.store.evictions(),
            persist_appended: persist.appended,
            persist_dropped: persist.dropped,
            persist_snapshots: persist.snapshots,
            persist_replayed: persist.replayed,
            lock_poisoned: self.metrics.lock_poisoned.get(),
            votes: votes.voted,
            vote_executions: votes.executions,
            vote_escalations: votes.escalated,
            vote_unsettled: votes.unsettled,
            vote_min_margin_permille: votes.min_margin_permille,
        }
    }

    fn namespace_stats(&self) -> Vec<WireNamespace> {
        self.store
            .namespace_usage()
            .into_iter()
            .map(|usage| WireNamespace {
                name: usage.name,
                entries: usage.entries,
                bytes: usage.bytes,
                hits: usage.hits,
                misses: usage.misses,
            })
            .collect()
    }

    /// Scrapes the metrics registry.  Quantities owned by other subsystems
    /// (the store's vote statistics and conflict count) are mirrored into
    /// gauges at scrape time, so one response covers the whole daemon.
    fn metrics_response(&self) -> Response {
        let registry = &self.metrics.registry;
        let votes = self.store.vote_stats();
        registry
            .gauge("cqd_store_conflicts")
            .set(self.store.conflicts());
        registry.gauge("cqd_votes").set(votes.voted);
        registry.gauge("cqd_vote_executions").set(votes.executions);
        registry.gauge("cqd_vote_escalations").set(votes.escalated);
        registry.gauge("cqd_vote_unsettled").set(votes.unsettled);
        let metrics = registry
            .snapshot()
            .into_iter()
            .map(|m| {
                let h = m.histogram.unwrap_or_default();
                WireMetric {
                    name: m.name,
                    kind: match m.kind {
                        MetricKind::Counter => "counter",
                        MetricKind::Gauge => "gauge",
                        MetricKind::Histogram => "histogram",
                    }
                    .to_string(),
                    value: m.value,
                    sum: h.sum,
                    min: h.min,
                    max: h.max,
                    p50: h.p50,
                    p90: h.p90,
                    p99: h.p99,
                }
            })
            .collect();
        Response::Metrics {
            text: registry.render_prometheus(),
            metrics,
        }
    }
}

/// A running daemon: its address plus everything needed to shut it down.
///
/// Dropping the handle shuts the daemon down; [`CqdHandle::shutdown`] does
/// the same explicitly.  See the [crate documentation](crate) for a usage
/// example.
#[derive(Debug)]
pub struct CqdHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_handle: Option<thread::JoinHandle<()>>,
    worker_handles: Vec<thread::JoinHandle<()>>,
    work_tx: Option<SyncSender<WorkItem>>,
}

impl CqdHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Fraction of concrete queries served from the shared store so far.
    pub fn store_hit_rate(&self) -> f64 {
        self.shared.global_stats().hit_rate()
    }

    /// Number of backend instances created so far.
    pub fn backend_instances(&self) -> usize {
        self.shared.pool.len(&self.shared.metrics.lock_poisoned)
    }

    /// Stops accepting connections, drains sessions, joins the worker pool
    /// and all learning jobs.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a dummy connection.  A wildcard bind
        // (0.0.0.0 / ::) is not connectable on every platform, so aim the
        // dummy at the loopback of the same address family instead.
        let mut connect_addr = self.addr;
        if connect_addr.ip().is_unspecified() {
            connect_addr.set_ip(match connect_addr {
                SocketAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                SocketAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect(connect_addr);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        // Sessions poll the shutdown flag on their read timeout.
        let sessions: Vec<_> = {
            let mut guard =
                lock_unpoisoned(&self.shared.sessions, &self.shared.metrics.lock_poisoned);
            guard.drain(..).collect()
        };
        for handle in sessions {
            let _ = handle.join();
        }
        // Closing the work channel terminates the workers.
        self.work_tx = None;
        for handle in self.worker_handles.drain(..) {
            let _ = handle.join();
        }
        // Join outstanding learning jobs so no thread outlives the daemon.
        let jobs: Vec<_> = {
            let mut guard = lock_unpoisoned(&self.shared.jobs, &self.shared.metrics.lock_poisoned);
            guard.drain().map(|(_, job)| job).collect()
        };
        for job in jobs {
            let _ = job.join();
        }
        // Every producer of store answers has stopped: flush the record log
        // and compact a final snapshot so the next start replays warm (both
        // are no-ops without --store-dir).
        self.shared.store.flush();
        self.shared.store.snapshot();
        // Everything that could emit has joined; push buffered span events
        // out to the trace log.
        if let Some(recorder) = &self.shared.recorder {
            recorder.flush();
        }
    }
}

impl Drop for CqdHandle {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Starts a daemon and returns its handle.
///
/// # Errors
///
/// Propagates the bind error if the configured address is unavailable, an
/// I/O error from opening/replaying the durable store, and an invalid
/// `store_evict` spec.
pub fn spawn(config: CqdConfig) -> std::io::Result<CqdHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let (work_tx, work_rx) = mpsc::sync_channel::<WorkItem>(config.queue_depth.max(1));
    let work_rx = Arc::new(Mutex::new(work_rx));
    let recorder = match &config.trace_log {
        None => None,
        Some(path) => {
            let file = std::fs::File::create(path)?;
            let sink = Arc::new(WriterSink::new(Box::new(std::io::BufWriter::new(file))));
            Some(Arc::new(Recorder::new(sink)))
        }
    };
    let mut store_options = StoreOptions {
        dir: config.store_dir.clone(),
        max_entries: config.store_max_entries,
        ..StoreOptions::default()
    };
    if let Some(spec) = &config.store_evict {
        let evictor = PolicyEvictor::from_spec(spec)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
        store_options.evictor = Some(Box::new(evictor));
    }
    let shared = Arc::new(Shared {
        config: config.clone(),
        store: Arc::new(QueryStore::with_options(store_options)?),
        metrics: ServerMetrics::default(),
        recorder,
        started: Instant::now(),
        pool: BackendPool::default(),
        jobs: Mutex::new(HashMap::new()),
        next_job_id: AtomicU64::new(1),
        shutdown: AtomicBool::new(false),
        sessions: Mutex::new(Vec::new()),
    });

    let mut worker_handles = Vec::with_capacity(config.workers);
    for worker in 0..config.workers.max(1) {
        let shared = Arc::clone(&shared);
        let work_rx = Arc::clone(&work_rx);
        worker_handles.push(
            thread::Builder::new()
                .name(format!("cqd-worker-{worker}"))
                .spawn(move || worker_loop(&shared, &work_rx))
                .expect("spawning a worker thread cannot fail"),
        );
    }

    let accept_shared = Arc::clone(&shared);
    let accept_tx = work_tx.clone();
    let accept_handle = thread::Builder::new()
        .name("cqd-accept".to_string())
        .spawn(move || accept_loop(listener, &accept_shared, &accept_tx))
        .expect("spawning the accept thread cannot fail");

    Ok(CqdHandle {
        addr,
        shared,
        accept_handle: Some(accept_handle),
        worker_handles,
        work_tx: Some(work_tx),
    })
}

fn accept_loop(listener: TcpListener, shared: &Arc<Shared>, work_tx: &SyncSender<WorkItem>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        shared.metrics.sessions_total.inc();
        shared.metrics.sessions_active.inc();
        let session_shared = Arc::clone(shared);
        let session_tx = work_tx.clone();
        let handle = thread::Builder::new()
            .name("cqd-session".to_string())
            .spawn(move || {
                session_loop(stream, &session_shared, &session_tx);
                session_shared.metrics.sessions_active.dec();
            })
            .expect("spawning a session thread cannot fail");
        let mut sessions = lock_unpoisoned(&shared.sessions, &shared.metrics.lock_poisoned);
        // Reap finished sessions so a long-running daemon does not accumulate
        // one JoinHandle per connection it ever served.
        sessions.retain(|h| !h.is_finished());
        sessions.push(handle);
    }
}

fn worker_loop(shared: &Arc<Shared>, work_rx: &Arc<Mutex<Receiver<WorkItem>>>) {
    loop {
        let item = {
            let receiver = lock_unpoisoned(work_rx, &shared.metrics.lock_poisoned);
            receiver.recv()
        };
        let Ok(item) = item else { break };
        shared.metrics.busy_workers.inc();
        let outcome = execute_item(shared, &item);
        shared.metrics.busy_workers.dec();
        // A dropped receiver just means the session went away mid-request.
        let _ = item.reply.send(outcome);
    }
}

fn hitmiss_pattern(outcomes: &[HitMiss]) -> String {
    outcomes
        .iter()
        .map(|o| if *o == HitMiss::Hit { 'H' } else { 'M' })
        .collect()
}

fn execute_item(
    shared: &Arc<Shared>,
    item: &WorkItem,
) -> Result<Vec<(usize, WireOutcome)>, String> {
    // Another session may have answered these queries while the item sat in
    // the queue; the store is the cheaper oracle, ask it again first — and
    // only lock (or lazily create, or re-target + re-calibrate) the scarce
    // pooled backend if something is still missing.
    let space = shared.store.space(&item.spec.config().to_string());
    let mut results = Vec::with_capacity(item.queries.len());
    let mut missing: Vec<(usize, Query)> = Vec::new();
    for (index, query) in &item.queries {
        match space.lookup(query) {
            Some(outcomes) => results.push((
                *index,
                WireOutcome {
                    query: render_query(query),
                    pattern: hitmiss_pattern(&outcomes),
                    consistent: true,
                    cached: true,
                },
            )),
            None => missing.push((*index, query.clone())),
        }
    }
    if missing.is_empty() {
        return Ok(results);
    }
    let instance = shared.pool.instance(
        &item.spec,
        &shared.store,
        &shared.recorder,
        &shared.metrics.lock_poisoned,
    )?;
    let mut backend = match instance.lock() {
        Ok(guard) => guard,
        // A poisoned backend is safe to reuse: every query starts with the
        // reset sequence, so no partial state leaks between queries.
        Err(poisoned) => {
            shared.metrics.lock_poisoned.inc();
            poisoned.into_inner()
        }
    };
    backend.configure(&item.spec)?;
    // The engine re-checks the store before executing (a query may have been
    // answered while this worker waited on the mutex) and records fresh
    // answers — the standard unified path.
    let queries: Vec<Query> = missing.iter().map(|(_, q)| q.clone()).collect();
    let outcomes = backend
        .engine
        .run_many(&queries)
        .map_err(|e| e.to_string())?;
    for ((index, _), outcome) in missing.iter().zip(outcomes) {
        if !outcome.from_cache {
            shared.metrics.backend_queries.inc();
        }
        results.push((
            *index,
            WireOutcome {
                query: outcome.rendered,
                pattern: hitmiss_pattern(&outcome.outcomes),
                consistent: outcome.consistent,
                cached: outcome.from_cache,
            },
        ));
    }
    Ok(results)
}

/// Per-session mutable state.
struct Session {
    wire_spec: SessionSpec,
    spec: ResolvedSpec,
    /// The store namespace of `spec`, cached for the lookup fast path.
    space: StoreSpace,
    stats: WireSessionStats,
}

impl Session {
    fn apply(&mut self, wire_spec: SessionSpec, spec: ResolvedSpec, store: &QueryStore) {
        self.space = store.space(&spec.config().to_string());
        self.wire_spec = wire_spec;
        self.spec = spec;
    }
}

fn session_loop(stream: TcpStream, shared: &Arc<Shared>, work_tx: &SyncSender<WorkItem>) {
    let Ok(read_stream) = stream.try_clone() else {
        return;
    };
    if read_stream.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
        return;
    }
    let mut reader = BufReader::new(read_stream);
    let mut writer = stream;
    let wire_spec = SessionSpec::default();
    let spec = resolve(&wire_spec).expect("the default session spec is valid");
    let space = shared.store.space(&spec.config().to_string());
    let mut session = Session {
        wire_spec,
        spec,
        space,
        stats: WireSessionStats::default(),
    };

    let mut buf: Vec<u8> = Vec::new();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match read_line_bounded(&mut reader, &mut buf, MAX_REQUEST_BYTES) {
            Ok(LineRead::Eof) => break,
            Ok(LineRead::TooLong) => {
                // Every other daemon resource is bounded (queue depth,
                // expansions, the mbl crate's own expansion guard); the
                // request line must be too.
                let _ = write_response(
                    &mut writer,
                    &Response::Error {
                        message: format!("request line exceeds {MAX_REQUEST_BYTES} bytes"),
                    },
                );
                break;
            }
            Ok(LineRead::Line) => {
                let request = String::from_utf8_lossy(&buf).trim().to_string();
                buf.clear();
                if request.is_empty() {
                    continue;
                }
                let quit = match decode_request(&request) {
                    Ok(request) => {
                        let quit = matches!(request, Request::Quit);
                        // The span clones the recorder Arc so it borrows a
                        // local, not `shared`.
                        let recorder = shared.recorder.clone();
                        let mut span = obs::maybe_span(recorder.as_deref(), "cqd.request");
                        if let Some(span) = span.as_mut() {
                            span.set("cmd", request_name(&request));
                        }
                        let started = Instant::now();
                        let ok =
                            handle_request(shared, work_tx, &mut session, &request, &mut writer);
                        shared
                            .metrics
                            .request_ns
                            .record(started.elapsed().as_nanos() as u64);
                        drop(span);
                        if !ok {
                            break;
                        }
                        quit
                    }
                    Err(e) => {
                        let response = Response::Error {
                            message: e.to_string(),
                        };
                        if write_response(&mut writer, &response).is_err() {
                            break;
                        }
                        false
                    }
                };
                if quit {
                    break;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        }
    }
}

/// The span label of a request, for the `cqd.request` trace field.
fn request_name(request: &Request) -> &'static str {
    match request {
        Request::Hello => "hello",
        Request::Target(_) => "target",
        Request::Query { .. } => "query",
        Request::Batch { .. } => "batch",
        Request::Repl { .. } => "repl",
        Request::Learn { .. } => "learn",
        Request::Replay { .. } => "replay",
        Request::Map { .. } => "map",
        Request::Job { .. } => "job",
        Request::Wait { .. } => "wait",
        Request::Stats => "stats",
        Request::Metrics => "metrics",
        Request::Persist => "persist",
        Request::Quit => "quit",
    }
}

fn write_response(writer: &mut TcpStream, response: &Response) -> std::io::Result<()> {
    let mut line = encode_response(response);
    line.push('\n');
    writer.write_all(line.as_bytes())?;
    writer.flush()
}

/// Result of one bounded line read.
enum LineRead {
    /// A complete line is in the buffer (newline stripped).
    Line,
    /// The peer closed the connection with nothing buffered.
    Eof,
    /// The line exceeded the byte bound.
    TooLong,
}

/// Reads one newline-terminated line into `buf`, never holding more than
/// `max` bytes, and preserving partial data across read timeouts (the
/// timeout surfaces as an `Err` the caller retries).
///
/// `std::io::BufRead::read_line` cannot be used here: with a fast sender it
/// appends inside a single call until a newline arrives, which would let a
/// newline-free stream grow the buffer without bound.
fn read_line_bounded(
    reader: &mut BufReader<TcpStream>,
    buf: &mut Vec<u8>,
    max: usize,
) -> std::io::Result<LineRead> {
    loop {
        let available = reader.fill_buf()?;
        if available.is_empty() {
            // EOF: deliver trailing unterminated data as a final line.
            return Ok(if buf.is_empty() {
                LineRead::Eof
            } else {
                LineRead::Line
            });
        }
        if let Some(position) = available.iter().position(|&b| b == b'\n') {
            buf.extend_from_slice(&available[..position]);
            reader.consume(position + 1);
            return Ok(LineRead::Line);
        }
        let n = available.len();
        buf.extend_from_slice(available);
        reader.consume(n);
        if buf.len() > max {
            return Ok(LineRead::TooLong);
        }
    }
}

/// Handles one request; returns `false` when the connection should close.
fn handle_request(
    shared: &Arc<Shared>,
    work_tx: &SyncSender<WorkItem>,
    session: &mut Session,
    request: &Request,
    writer: &mut TcpStream,
) -> bool {
    let response = match request {
        Request::Hello => Response::Hello {
            server: "cqd".to_string(),
            proto: PROTOCOL_VERSION,
            workers: shared.config.workers as u64,
        },
        Request::Target(wire_spec) => {
            match resolve_with_limits(wire_spec, shared.config.max_learn_assoc) {
                Ok(spec) => {
                    let message = match &spec.backend {
                        ResolvedBackend::Hardware { seed, .. } => format!(
                            "target: {} (model {}, seed {})",
                            spec.target, wire_spec.model, seed
                        ),
                        ResolvedBackend::Policy { kind, assoc, noise } => match noise {
                            None => format!("target: simulated policy {kind}@{assoc}"),
                            Some((noise_spec, reps)) => format!(
                                "target: simulated policy {kind}@{assoc} with noise \
                                 [{noise_spec}] voted over {reps} repetitions"
                            ),
                        },
                    };
                    session.apply(wire_spec.clone(), spec, &shared.store);
                    Response::Done { message }
                }
                Err(message) => Response::Error { message },
            }
        }
        Request::Query { mbl } => match run_mbl(shared, work_tx, session, mbl) {
            Ok(results) => Response::Outcomes { results },
            Err(message) => Response::Error { message },
        },
        Request::Batch { exprs } => {
            let mut groups = Vec::with_capacity(exprs.len());
            let mut error = None;
            for expr in exprs {
                match run_mbl(shared, work_tx, session, expr) {
                    Ok(results) => groups.push(results),
                    Err(message) => {
                        error = Some(message);
                        break;
                    }
                }
            }
            match error {
                None => Response::Batch { groups },
                Some(message) => Response::Error { message },
            }
        }
        Request::Repl { line } => handle_repl(shared, work_tx, session, line),
        Request::Learn { spec } => handle_learn(shared, spec),
        Request::Replay {
            spec,
            generator,
            accesses,
            lines,
            seed,
            job,
        } => handle_replay(shared, spec, generator, *accesses, *lines, *seed, *job),
        Request::Map {
            model,
            seed,
            cat,
            slice,
            sets,
        } => handle_map(shared, model, *seed, *cat, *slice, *sets),
        Request::Job { id } => match job_status(shared, *id) {
            Some(status) => Response::JobStatus(status),
            None => Response::Error {
                message: format!("no such job: {id}"),
            },
        },
        Request::Wait { id } => return stream_wait(shared, *id, writer),
        Request::Stats => Response::Stats {
            global: shared.global_stats(),
            session: session.stats,
            namespaces: shared.namespace_stats(),
        },
        Request::Metrics => shared.metrics_response(),
        Request::Persist => {
            // Both calls block until the writer acknowledges, so a client
            // that sees `done` knows its answers are on disk.
            shared.store.flush();
            shared.store.snapshot();
            let message = match shared.store.store_dir() {
                Some(dir) => format!("store persisted to {}", dir.display()),
                None => "store is memory-only (started without --store-dir)".to_string(),
            };
            Response::Done { message }
        }
        Request::Quit => Response::Bye,
    };
    write_response(writer, &response).is_ok()
}

/// Expands one MBL expression, serves what the store knows, routes the rest
/// through the worker pool, and reassembles the results in expansion order.
fn run_mbl(
    shared: &Arc<Shared>,
    work_tx: &SyncSender<WorkItem>,
    session: &mut Session,
    mbl: &str,
) -> Result<Vec<WireOutcome>, String> {
    let queries = expand_query(mbl, session.spec.assoc).map_err(|e| e.to_string())?;
    if queries.len() > shared.config.max_expansions {
        return Err(format!(
            "expression expands to {} queries (limit {})",
            queries.len(),
            shared.config.max_expansions
        ));
    }
    let mut results: Vec<Option<WireOutcome>> = vec![None; queries.len()];
    let mut misses = Vec::new();
    for (index, query) in queries.into_iter().enumerate() {
        match session.space.lookup(&query) {
            Some(outcomes) => {
                results[index] = Some(WireOutcome {
                    query: render_query(&query),
                    pattern: hitmiss_pattern(&outcomes),
                    consistent: true,
                    cached: true,
                });
            }
            None => misses.push((index, query)),
        }
    }
    if !misses.is_empty() {
        let (reply_tx, reply_rx) = mpsc::channel();
        work_tx
            .send(WorkItem {
                spec: session.spec.clone(),
                queries: misses,
                reply: reply_tx,
            })
            .map_err(|_| "server is shutting down".to_string())?;
        let worker_results = reply_rx
            .recv()
            .map_err(|_| "backend worker disappeared".to_string())??;
        for (index, outcome) in worker_results {
            results[index] = Some(outcome);
        }
    }
    let results: Vec<WireOutcome> = results
        .into_iter()
        .map(|r| r.expect("every expansion index is answered"))
        .collect();
    let hits = results.iter().filter(|r| r.cached).count() as u64;
    session.stats.queries += results.len() as u64;
    session.stats.store_hits += hits;
    shared.metrics.queries.add(results.len() as u64);
    shared.metrics.store_hits.add(hits);
    Ok(results)
}

/// Maps one line of the shared REPL command language onto the session: the
/// same [`Command`] values `mbl_repl` executes in-process reconfigure this
/// session's spec or run queries through the store/worker path.
fn handle_repl(
    shared: &Arc<Shared>,
    work_tx: &SyncSender<WorkItem>,
    session: &mut Session,
    line: &str,
) -> Response {
    let Some(command) = parse_command(line) else {
        return Response::Done {
            message: String::new(),
        };
    };
    // Configuration commands stage a candidate spec and commit only if it
    // validates — mirroring the lazy-validation REPL but failing eagerly.
    let mut candidate = session.wire_spec.clone();
    let message = match &command {
        Command::Help => Ok(HELP_TEXT.to_string()),
        Command::Usage(usage) => Ok((*usage).to_string()),
        Command::Level(level) => {
            candidate.level = level.to_string();
            Ok(format!("target level set to {level}"))
        }
        Command::Set(set) => {
            candidate.set = *set as u64;
            Ok(format!("target set index set to {set}"))
        }
        Command::Slice(slice) => {
            candidate.slice = *slice as u64;
            Ok(format!("target slice set to {slice}"))
        }
        Command::Reps(reps) => {
            candidate.reps = (*reps as u64).max(1);
            // Report the effective (odd-rounded) count, like the in-process
            // shell does after Backend::set_repetitions.
            let r = (*reps).max(1);
            let effective = if r.is_multiple_of(2) { r + 1 } else { r };
            Ok(format!("repetitions set to {effective}"))
        }
        Command::Reset(reset) => {
            candidate.reset = reset.to_string();
            Ok(format!("reset sequence set to {reset}"))
        }
        Command::Cat(ways) => {
            candidate.cat = Some(*ways as u64);
            Ok(format!("last-level cache restricted to {ways} ways"))
        }
        Command::Assoc => Ok(format!("associativity: {}", session.spec.assoc)),
        Command::Target => Ok(format!(
            "target: {} set {} slice {}",
            session.spec.target.level, session.spec.target.set, session.spec.target.slice
        )),
        Command::Stats => Ok(format!(
            "queries: {} (store hits: {})",
            session.stats.queries, session.stats.store_hits
        )),
        Command::Query(mbl) => {
            return match run_mbl(shared, work_tx, session, mbl) {
                Ok(results) => Response::Outcomes { results },
                Err(message) => Response::Error { message },
            };
        }
    };
    match message {
        Ok(message) => {
            if candidate != session.wire_spec {
                match resolve_with_limits(&candidate, shared.config.max_learn_assoc) {
                    Ok(spec) => session.apply(candidate, spec, &shared.store),
                    Err(error) => {
                        return Response::Error { message: error };
                    }
                }
            }
            Response::Done { message }
        }
        Err(error) => Response::Error { message: error },
    }
}

fn handle_learn(shared: &Arc<Shared>, spec: &str) -> Response {
    // The campaign's oracle runs through an engine over the daemon's shared
    // store: every concrete query it issues lands in the same namespace
    // `policy:` sessions (with the same noise spec) are served from.  Noisy
    // campaigns vote: only settled majorities reach the store.
    fn spawn_campaign<B>(
        shared: &Arc<Shared>,
        backend: B,
        namespace: &str,
        kind: PolicyKind,
    ) -> Result<LearnJob, String>
    where
        B: QueryBackend + Clone + Send + 'static,
    {
        let mut engine = QueryEngine::with_store(backend, Arc::clone(&shared.store));
        engine.set_recorder(shared.recorder.clone());
        let space = shared.store.space(namespace);
        let oracle = CacheQueryOracle::from_engine(engine).map_err(|e| e.to_string())?;
        let setup = LearnSetup {
            workers: shared.config.learn_workers,
            recorder: shared.recorder.clone(),
            ..LearnSetup::default()
        };
        Ok(polca::spawn_learn_job(
            oracle,
            vec![kind],
            setup,
            Some(space),
        ))
    }

    match parse_policy_spec(spec, shared.config.max_learn_assoc) {
        Ok((kind, assoc, noise)) => {
            let job = match &noise {
                None => PolicySimBackend::new(kind, assoc)
                    .map_err(|e| e.to_string())
                    .and_then(|backend| {
                        let namespace = PolicySimBackend::config_for(kind, assoc).to_string();
                        spawn_campaign(shared, backend, &namespace, kind)
                    }),
                Some((noise_spec, reps)) => noisy_sim_backend(kind, assoc, *noise_spec)
                    .map_err(|e| e.to_string())
                    .and_then(|backend| {
                        let namespace =
                            noisy_sim_config_for(kind, assoc, noise_spec, *reps).to_string();
                        spawn_campaign(shared, backend.with_repetitions(*reps), &namespace, kind)
                    }),
            };
            let job = match job {
                Ok(job) => job,
                Err(message) => return Response::Error { message },
            };
            let id = shared.next_job_id.fetch_add(1, Ordering::Relaxed);
            lock_unpoisoned(&shared.jobs, &shared.metrics.lock_poisoned).insert(id, job);
            shared.metrics.jobs_spawned.inc();
            Response::JobStarted { id }
        }
        Err(message) => Response::Error { message },
    }
}

/// Hard ceiling on server-side replay length: a million accesses keep a
/// `replay` request comfortably in the low tens of milliseconds.
const MAX_REPLAY_ACCESSES: u64 = 1_000_000;
/// Hard ceiling on the replay working set (in cache lines).
const MAX_REPLAY_LINES: u64 = 1 << 16;

/// Serves a `replay` request: generates the trace server-side, replays it
/// through the ground-truth simulator and — when `job` names a finished
/// campaign — differentially through the learned machine, so a client can
/// evaluate a learning result under traffic without ever downloading it.
fn handle_replay(
    shared: &Arc<Shared>,
    spec: &str,
    generator: &str,
    accesses: u64,
    lines: u64,
    seed: u64,
    job: Option<u64>,
) -> Response {
    let (kind, assoc, noise) = match parse_policy_spec(spec, shared.config.max_learn_assoc) {
        Ok(parsed) => parsed,
        Err(message) => return Response::Error { message },
    };
    if noise.is_some() {
        return Response::Error {
            message: "replay needs a deterministic ground truth; drop the +noise(...) suffix"
                .to_string(),
        };
    }
    let generator = match generator.parse::<GeneratorKind>() {
        Ok(generator) => generator,
        Err(e) => {
            return Response::Error {
                message: e.to_string(),
            }
        }
    };
    let trace_spec = TraceSpec {
        generator,
        accesses: accesses.clamp(1, MAX_REPLAY_ACCESSES) as usize,
        lines: lines.clamp(1, MAX_REPLAY_LINES) as usize,
        seed,
        ..TraceSpec::default()
    };
    // The machine is cloned out of the job table so the replay itself runs
    // without holding the daemon-wide lock.
    let machine = match job {
        None => None,
        Some(id) => {
            let jobs = lock_unpoisoned(&shared.jobs, &shared.metrics.lock_poisoned);
            let Some(job) = jobs.get(&id) else {
                return Response::Error {
                    message: format!("no such job: {id}"),
                };
            };
            match job.machine() {
                Some(machine) => Some(machine),
                None => {
                    return Response::Error {
                        message: format!(
                            "job {id} has no learned machine (still running or failed)"
                        ),
                    }
                }
            }
        }
    };
    let trace = generate(&trace_spec);
    let geometry = cache::CacheGeometry::new(assoc, 64, 1, 64);
    let mut reply = WireReplay {
        spec: format!("{kind}@{assoc}"),
        generator: generator.name().to_string(),
        accesses: 0,
        sim_hits: 0,
        sim_misses: 0,
        sim_evictions: 0,
        machine_states: 0,
        machine_hits: 0,
        machine_misses: 0,
        diverged: false,
        divergence: String::new(),
    };
    match machine {
        None => {
            let counts = match replay_policy(&trace, kind, geometry) {
                Ok(counts) => counts,
                Err(e) => {
                    return Response::Error {
                        message: e.to_string(),
                    }
                }
            };
            reply.accesses = counts.accesses;
            reply.sim_hits = counts.hits;
            reply.sim_misses = counts.misses;
            reply.sim_evictions = counts.evictions;
        }
        Some(machine) => {
            let report = match differential_replay(&trace, kind, geometry, &machine) {
                Ok(report) => report,
                Err(e) => {
                    return Response::Error {
                        message: e.to_string(),
                    }
                }
            };
            reply.accesses = report.simulator.accesses;
            reply.sim_hits = report.simulator.hits;
            reply.sim_misses = report.simulator.misses;
            reply.sim_evictions = report.simulator.evictions;
            reply.machine_states = machine.num_states() as u64;
            reply.machine_hits = report.machine.hits;
            reply.machine_misses = report.machine.misses;
            reply.diverged = !report.passed();
            reply.divergence = report.divergence.map(|d| d.to_string()).unwrap_or_default();
        }
    }
    Response::Replay(reply)
}

/// Hard ceiling on the number of sets one `map` request may sweep.  Leader
/// detection costs a few tens of milliseconds per set, so the cap keeps a
/// synchronous map request in single-digit seconds.
const MAX_MAP_SETS: u64 = 128;
/// Time budget for each leader group's learning campaign, so an unexpected
/// policy fails the request instead of wedging the session thread.
const MAP_LEARN_BUDGET: Duration = Duration::from_secs(120);
/// State bound for each leader group's learning campaign.
const MAP_MAX_STATES: usize = 4096;

fn map_class(class: cachequery::LeaderClass) -> String {
    match class {
        cachequery::LeaderClass::ThrashVulnerable => "thrash-vulnerable",
        cachequery::LeaderClass::ThrashResistant => "thrash-resistant",
        cachequery::LeaderClass::Adaptive => "adaptive",
    }
    .to_string()
}

fn wire_map(map: &CacheMap) -> WireCacheMap {
    let groups = map
        .groups
        .iter()
        .map(|group| {
            let mut wire = WireMapGroup {
                class: map_class(group.class),
                members: group.members.len() as u64,
                representative_set: group.representative.0 as u64,
                representative_slice: group.representative.1 as u64,
                namespace: group.namespace.clone(),
                outcome: String::new(),
                states: 0,
                queries: 0,
                identified: String::new(),
                disagreement_permille: 0,
                detail: String::new(),
            };
            match &group.outcome {
                GroupOutcome::Learned {
                    states,
                    membership_queries,
                    identified,
                } => {
                    wire.outcome = "learned".to_string();
                    wire.states = *states;
                    wire.queries = *membership_queries;
                    wire.identified = identified.clone().unwrap_or_default();
                }
                GroupOutcome::NotDeterministic { evidence } => {
                    wire.outcome = "not-deterministic".to_string();
                    wire.queries = evidence.voted_queries;
                    wire.disagreement_permille = evidence.disagreement_permille;
                    wire.detail = evidence.to_string();
                }
                GroupOutcome::Failed { error } => {
                    wire.outcome = "failed".to_string();
                    wire.detail = error.clone();
                }
            }
            wire
        })
        .collect();
    let sets = map
        .sets
        .iter()
        .map(|entry| {
            let mut wire = WireMapSet {
                set: entry.set as u64,
                slice: entry.slice as u64,
                class: map_class(entry.class),
                verdict: String::new(),
                policy: String::new(),
                states: 0,
                disagreement_permille: 0,
                detail: String::new(),
            };
            match &entry.verdict {
                SetVerdict::Fixed { policy, states } => {
                    wire.verdict = "fixed".to_string();
                    wire.policy = policy.clone().unwrap_or_default();
                    wire.states = *states;
                }
                SetVerdict::FixedNonDeterministic {
                    disagreement_permille,
                } => {
                    wire.verdict = "fixed-nondet".to_string();
                    wire.disagreement_permille = *disagreement_permille;
                }
                SetVerdict::AdaptiveFollower {
                    disagreement_permille,
                } => {
                    wire.verdict = "adaptive".to_string();
                    wire.disagreement_permille = *disagreement_permille;
                }
                SetVerdict::Unmapped { error } => {
                    wire.verdict = "unmapped".to_string();
                    wire.detail = error.clone();
                }
            }
            wire
        })
        .collect();
    WireCacheMap {
        model: map.model.clone(),
        level: map.level.to_string(),
        cat: map.cat_ways.map(|ways| ways as u64),
        groups,
        sets,
    }
}

/// Serves a `map` request: sweeps the first `sets` sets of the model's L3
/// server-side — leader detection, one learning campaign per leader group
/// through the daemon's shared store (so remapping the same CPU re-serves
/// the campaigns from memo), follower flip probes — and returns the per-set
/// policy map.  Synchronous, like `replay`: the campaign is seconds-scale
/// under the CAT restriction the associativity limit enforces.
fn handle_map(
    shared: &Arc<Shared>,
    model: &str,
    seed: u64,
    cat: Option<u64>,
    slice: u64,
    sets: u64,
) -> Response {
    let Some(model) = parse_model(model) else {
        return Response::Error {
            message: format!("unknown CPU model '{model}' (haswell|skylake|kabylake)"),
        };
    };
    let cpu_spec = model.spec();
    let geometry = cpu_spec
        .level(LevelId::L3)
        .expect("all modelled CPUs have an L3")
        .geometry;
    let cat_ways = match cat {
        None => None,
        Some(ways) => {
            if !cpu_spec.supports_cat {
                return Response::Error {
                    message: format!("{} does not support Intel CAT", cpu_spec.name),
                };
            }
            if ways == 0 || ways as usize > geometry.associativity {
                return Response::Error {
                    message: format!(
                        "CAT ways {ways} out of range (L3 has {} ways)",
                        geometry.associativity
                    ),
                };
            }
            Some(ways as usize)
        }
    };
    // The leader groups are learned at the effective associativity; hold it
    // to the same ceiling as `learn` so a map request cannot smuggle in a
    // campaign the server would refuse as a job.
    let assoc = cat_ways.unwrap_or(geometry.associativity);
    if assoc > shared.config.max_learn_assoc {
        return Response::Error {
            message: format!(
                "mapping at associativity {assoc} exceeds this server's learning limit {}; \
                 restrict the L3 with 'cat'",
                shared.config.max_learn_assoc
            ),
        };
    }
    if slice as usize >= geometry.slices {
        return Response::Error {
            message: format!(
                "slice {slice} out of range (L3 has {} slices)",
                geometry.slices
            ),
        };
    }
    let count = sets.clamp(1, MAX_MAP_SETS.min(geometry.sets_per_slice as u64)) as usize;
    let mut config = MapConfig::new(model, seed, (0..count).collect());
    config.slice = slice as usize;
    config.cat_ways = cat_ways;
    config.setup.max_states = MAP_MAX_STATES;
    config.setup.time_budget = Some(MAP_LEARN_BUDGET);
    // One worker keeps campaigns over randomized policies deterministic
    // (fixed query order), and keeps map requests from starving the pool.
    config.setup.workers = 1;
    config.setup.recorder = shared.recorder.clone();
    match map_cache(&config, Arc::clone(&shared.store)) {
        Ok(map) => Response::Map(wire_map(&map)),
        Err(error) => Response::Error {
            message: error.to_string(),
        },
    }
}

fn job_status(shared: &Arc<Shared>, id: u64) -> Option<WireJobStatus> {
    let jobs = lock_unpoisoned(&shared.jobs, &shared.metrics.lock_poisoned);
    let status = jobs.get(&id)?.status();
    Some(wire_status(id, &status))
}

fn wire_status(id: u64, status: &JobStatus) -> WireJobStatus {
    match status {
        JobStatus::Running {
            elapsed,
            states,
            membership_queries,
            store_hit_rate,
        } => WireJobStatus {
            id,
            state: "running".to_string(),
            detail: String::new(),
            finished: false,
            states: *states,
            queries: *membership_queries,
            hit_rate: *store_hit_rate,
            millis: elapsed.as_millis() as u64,
            phases: Vec::new(),
        },
        JobStatus::Done { result, elapsed } => WireJobStatus {
            id,
            state: "done".to_string(),
            detail: match &result.identified {
                Some(name) => format!("identified as {name}"),
                None => "not identified".to_string(),
            },
            finished: true,
            states: result.states as u64,
            queries: result.membership_queries,
            hit_rate: result.cache_hit_rate,
            millis: elapsed.as_millis() as u64,
            phases: result
                .profile
                .phases
                .iter()
                .map(|p| WirePhase {
                    name: p.name.clone(),
                    queries: p.queries,
                    millis: p.millis,
                })
                .collect(),
        },
        JobStatus::Failed { error, elapsed } => WireJobStatus {
            id,
            state: "failed".to_string(),
            detail: error.clone(),
            finished: true,
            states: 0,
            queries: 0,
            hit_rate: 0.0,
            millis: elapsed.as_millis() as u64,
            phases: Vec::new(),
        },
    }
}

/// Streams job status lines until the job finishes (or the daemon shuts
/// down); returns `false` when the connection should close.
fn stream_wait(shared: &Arc<Shared>, id: u64, writer: &mut TcpStream) -> bool {
    let mut last_emit: Option<std::time::Instant> = None;
    loop {
        let Some(mut status) = job_status(shared, id) else {
            return write_response(
                writer,
                &Response::Error {
                    message: format!("no such job: {id}"),
                },
            )
            .is_ok();
        };
        if status.finished {
            return write_response(writer, &Response::JobStatus(status)).is_ok();
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            status.detail = "server is shutting down".to_string();
            status.state = "failed".to_string();
            status.finished = true;
            let _ = write_response(writer, &Response::JobStatus(status));
            return false;
        }
        let due = last_emit.is_none_or(|t| t.elapsed() >= WAIT_STATUS_INTERVAL);
        if due {
            if write_response(writer, &Response::JobStatus(status)).is_err() {
                return false;
            }
            last_emit = Some(std::time::Instant::now());
        }
        thread::sleep(Duration::from_millis(10));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_resolve_and_validate() {
        let spec = SessionSpec::default();
        let resolved = resolve(&spec).unwrap();
        assert_eq!(resolved.assoc, 8);
        assert_eq!(resolved.target, Target::new(LevelId::L1, 0, 0));
        assert_eq!(resolved.reps, 3);

        let bad_model = SessionSpec {
            model: "pentium".into(),
            ..SessionSpec::default()
        };
        assert!(resolve(&bad_model).is_err());
        let bad_set = SessionSpec {
            set: 10_000,
            ..SessionSpec::default()
        };
        assert!(resolve(&bad_set).is_err());
        let bad_reset = SessionSpec {
            reset: "(".into(),
            ..SessionSpec::default()
        };
        assert!(resolve(&bad_reset).is_err());
        let haswell_cat = SessionSpec {
            model: "haswell".into(),
            cat: Some(4),
            ..SessionSpec::default()
        };
        assert!(resolve(&haswell_cat).unwrap_err().contains("CAT"));
    }

    #[test]
    fn cat_changes_the_effective_l3_associativity() {
        let spec = SessionSpec {
            level: "L3".into(),
            cat: Some(4),
            ..SessionSpec::default()
        };
        assert_eq!(resolve(&spec).unwrap().assoc, 4);
        // Repetition rounding matches the backend (even → odd).
        let spec = SessionSpec {
            reps: 4,
            ..SessionSpec::default()
        };
        assert_eq!(resolve(&spec).unwrap().reps, 5);
    }

    #[test]
    fn store_namespaces_capture_the_whole_configuration() {
        let a = resolve(&SessionSpec::default()).unwrap().config();
        let b = resolve(&SessionSpec {
            seed: 8,
            ..SessionSpec::default()
        })
        .unwrap()
        .config();
        assert_ne!(a.to_string(), b.to_string());
    }

    #[test]
    fn session_configs_match_the_backends_own_namespace() {
        // The keystone of the shared store: the namespace a session computes
        // from its spec must be byte-identical to the one the pooled engine
        // derives from its configured backend — otherwise lookups and
        // recordings never meet.
        let spec = SessionSpec {
            set: 13,
            reps: 4,
            ..SessionSpec::default()
        };
        let resolved = resolve(&spec).unwrap();
        let mut backend = Backend::new(SimulatedCpu::new(CpuModel::SkylakeI5_6500, 7));
        backend.set_repetitions(resolved.reps);
        backend.set_reset_sequence(resolved.reset.clone());
        backend.select_target(resolved.target).unwrap();
        assert_eq!(
            resolved.config().to_string(),
            QueryBackend::config(&backend).unwrap().to_string()
        );
        // Same for policy backends.
        let policy_spec = SessionSpec {
            policy: Some("LRU@4".into()),
            ..SessionSpec::default()
        };
        let resolved = resolve(&policy_spec).unwrap();
        let sim = PolicySimBackend::new(PolicyKind::Lru, 4).unwrap();
        assert_eq!(
            resolved.config().to_string(),
            QueryBackend::config(&sim).unwrap().to_string()
        );
    }

    #[test]
    fn policy_specs_resolve_and_validate() {
        let spec = SessionSpec {
            policy: Some("PLRU@4".into()),
            ..SessionSpec::default()
        };
        let resolved = resolve(&spec).unwrap();
        assert_eq!(resolved.assoc, 4);
        assert!(matches!(
            resolved.backend,
            ResolvedBackend::Policy {
                kind: PolicyKind::Plru,
                assoc: 4,
                noise: None
            }
        ));
        for bad in ["PLRU", "PLRU@0", "PLRU@64", "PLRU@3", "CLAIRVOYANT@2"] {
            let spec = SessionSpec {
                policy: Some(bad.into()),
                ..SessionSpec::default()
            };
            assert!(resolve(&spec).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn noisy_policy_specs_resolve_and_validate() {
        let spec = SessionSpec {
            policy: Some("LRU@4+noise(flip=0.05,drop=0.01,seed=9,reps=5)".into()),
            ..SessionSpec::default()
        };
        let resolved = resolve(&spec).unwrap();
        let ResolvedBackend::Policy {
            kind,
            assoc,
            noise: Some((noise, reps)),
        } = resolved.backend
        else {
            panic!("noisy spec resolved to {:?}", resolved.backend);
        };
        assert_eq!((kind, assoc, reps), (PolicyKind::Lru, 4, 5));
        assert_eq!(
            noise,
            NoiseSpec {
                flip_permille: 50,
                drop_permille: 10,
                evict_permille: 0,
                seed: 9,
            }
        );
        // The engine votes with the spec's repetition count.
        assert_eq!(resolved.reps, 5);
        // Omitted keys default; reps defaults to the noisy default.
        let spec = SessionSpec {
            policy: Some("FIFO@2+noise(flip=0.1)".into()),
            ..SessionSpec::default()
        };
        let resolved = resolve(&spec).unwrap();
        assert_eq!(resolved.reps, DEFAULT_NOISY_REPS);

        for bad in [
            "LRU@4+noise(flip=0.05",
            "LRU@4+noise(flip=2.0)",
            "LRU@4+noise(flip=-0.1)",
            "LRU@4+noise(warp=0.1)",
            "LRU@4+noise(flip)",
            "LRU@4+noise(seed=x)",
        ] {
            let spec = SessionSpec {
                policy: Some(bad.into()),
                ..SessionSpec::default()
            };
            assert!(resolve(&spec).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn noisy_session_configs_match_the_backends_own_namespace() {
        // Same keystone as the clean paths: the namespace a noisy session
        // computes must be byte-identical to what the pooled noisy engine
        // derives from its backend, or voted answers and lookups never meet.
        let spec = SessionSpec {
            policy: Some("PLRU@4+noise(flip=0.05,evict=0.002,seed=3)".into()),
            ..SessionSpec::default()
        };
        let resolved = resolve(&spec).unwrap();
        let ResolvedBackend::Policy {
            noise: Some((noise, reps)),
            ..
        } = &resolved.backend
        else {
            panic!("expected a noisy policy backend");
        };
        let backend = noisy_sim_backend(PolicyKind::Plru, 4, *noise)
            .unwrap()
            .with_repetitions(*reps);
        assert_eq!(
            resolved.config().to_string(),
            backend.config().unwrap().to_string()
        );
        // Different noise specs are different namespaces (noise can never
        // pollute the clean namespace).
        let clean = resolve(&SessionSpec {
            policy: Some("PLRU@4".into()),
            ..SessionSpec::default()
        })
        .unwrap();
        assert_ne!(resolved.config().to_string(), clean.config().to_string());
    }
}
