//! Standalone `cqd` daemon.
//!
//! Usage: `cqd [--addr HOST:PORT] [--workers N] [--queue-depth N]
//! [--trace-log PATH] [--store-dir DIR] [--store-max-entries N]
//! [--store-evict POLICY[@WAYS]]`
//!
//! With `--store-dir`, the shared query store is durable: answers append to
//! a record log in DIR, are compacted into snapshots, and replay on the next
//! start — a restarted daemon serves yesterday's campaign from memory, and a
//! `kill -9` loses at most the unsynced log tail.  `--store-max-entries`
//! bounds the store, evicting whole namespaces chosen by `--store-evict`
//! (default `lru@16`).
//!
//! Runs until killed (or until stdin reaches EOF when `--until-eof` is
//! given, which is how the smoke tests drive a bounded run).

use server::{spawn, CqdConfig};

fn value_of(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = CqdConfig::default();
    if let Some(addr) = value_of(&args, "--addr") {
        config.addr = addr;
    }
    if let Some(workers) = value_of(&args, "--workers").and_then(|v| v.parse().ok()) {
        config.workers = workers;
    }
    if let Some(depth) = value_of(&args, "--queue-depth").and_then(|v| v.parse().ok()) {
        config.queue_depth = depth;
    }
    if let Some(path) = value_of(&args, "--trace-log") {
        config.trace_log = Some(path.into());
    }
    if let Some(dir) = value_of(&args, "--store-dir") {
        config.store_dir = Some(dir.into());
    }
    if let Some(max) = value_of(&args, "--store-max-entries").and_then(|v| v.parse().ok()) {
        config.store_max_entries = Some(max);
    }
    if let Some(spec) = value_of(&args, "--store-evict") {
        config.store_evict = Some(spec);
    }
    let until_eof = args.iter().any(|a| a == "--until-eof");

    let daemon = match spawn(config) {
        Ok(daemon) => daemon,
        Err(e) => {
            eprintln!("cqd: failed to start: {e}");
            std::process::exit(1);
        }
    };
    println!("cqd listening on {}", daemon.addr());

    if until_eof {
        // Exit when the parent closes our stdin (test harness mode).
        let mut sink = String::new();
        while std::io::stdin().read_line(&mut sink).unwrap_or(0) > 0 {
            sink.clear();
        }
        daemon.shutdown();
    } else {
        // Serve forever: park the main thread.
        loop {
            std::thread::park();
        }
    }
}
