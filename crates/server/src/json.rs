//! A minimal JSON encoder/decoder for the wire format.
//!
//! The build environment is offline (no `serde`), and the `cqd` protocol
//! only needs the JSON subset that newline-delimited request/response
//! objects use: objects with string keys, arrays, strings, integers/floats,
//! booleans and `null`.  This module hand-rolls exactly that — a [`Json`]
//! value tree, a recursive-descent parser and a renderer — with two
//! deliberate choices:
//!
//! * objects preserve insertion order (a `Vec` of pairs, not a map), so
//!   encoding is deterministic and round-trip tests can compare rendered
//!   strings;
//! * numbers are stored as `f64` but rendered without a fractional part
//!   whenever they are integral, so counters and ids survive a round trip
//!   textually unchanged (the protocol never needs integers above 2^53).

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (integers are rendered without a fractional part).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

/// A JSON parse error: a message plus the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Convenience constructor for an object.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Convenience constructor for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience constructor for an integral number.
    pub fn num(n: u64) -> Json {
        Json::Num(n as f64)
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a bool, if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses one JSON document (trailing whitespace is allowed, trailing
    /// garbage is not).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] describing the first malformed construct.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_whitespace();
        let value = parser.value()?;
        parser.skip_whitespace();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing characters after the document"));
        }
        Ok(value)
    }

    /// Renders the value as compact JSON (no insignificant whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                if !n.is_finite() {
                    // JSON has no NaN/infinity; `null` keeps the output
                    // parseable instead of corrupting the whole line.
                    out.push_str("null");
                } else if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(key, out);
                    out.push(':');
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{text}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.error("unexpected character")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: consume a run of plain (unescaped, ASCII-safe or
            // multi-byte UTF-8) bytes in one slice copy.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid UTF-8 in string"))?;
                out.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.error("dangling escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&code) {
                                // A surrogate pair: require the low half.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                self.pos += 1;
                                let low = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&low) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| self.error("invalid unicode escape"))?);
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                Some(_) => return Err(self.error("control character in string")),
                None => return Err(self.error("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let digit = self
                .peek()
                .and_then(|c| (c as char).to_digit(16))
                .ok_or_else(|| self.error("expected four hex digits"))?;
            value = value * 16 + digit;
            self.pos += 1;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        text.parse::<f64>()
            .ok()
            // Overflowing literals like 1e309 parse to infinity, which this
            // module could not re-render as valid JSON; reject them.
            .filter(|n| n.is_finite())
            .map(Json::Num)
            .ok_or_else(|| self.error("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-17", "3.5", "\"hi\""] {
            let value = Json::parse(text).unwrap();
            assert_eq!(value.render(), text, "round trip of {text}");
        }
    }

    #[test]
    fn nested_documents_round_trip() {
        let text = r#"{"cmd":"query","mbl":"@ X A?","ids":[1,2,3],"opt":null,"ok":true}"#;
        let value = Json::parse(text).unwrap();
        assert_eq!(value.render(), text);
        assert_eq!(value.get("cmd").and_then(Json::as_str), Some("query"));
        assert_eq!(
            value.get("ids").and_then(Json::as_arr).map(<[_]>::len),
            Some(3)
        );
    }

    #[test]
    fn escapes_render_and_parse() {
        let original = "line\nbreak \"quoted\" back\\slash \t tab \u{8} \u{c} ünïcode 🦀";
        let rendered = Json::Str(original.to_string()).render();
        assert_eq!(Json::parse(&rendered).unwrap().as_str(), Some(original));
        // Unicode escapes (incl. surrogate pairs) parse to the same chars.
        assert_eq!(
            Json::parse(r#""\u00fc \ud83e\udd80""#).unwrap().as_str(),
            Some("ü 🦀")
        );
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for text in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "\"",
            "\"\\x\"",
            "1 2",
            "{\"a\":1,}",
            "nullx",
            "\"\\ud800\"",
        ] {
            assert!(Json::parse(text).is_err(), "accepted malformed: {text}");
        }
    }

    #[test]
    fn integral_numbers_render_without_fraction() {
        assert_eq!(Json::num(12345).render(), "12345");
        assert_eq!(Json::Num(2.5).render(), "2.5");
        assert_eq!(Json::parse("1e3").unwrap().render(), "1000");
    }

    #[test]
    fn non_finite_numbers_never_corrupt_output() {
        // Overflowing literals are rejected at parse time…
        assert!(Json::parse("1e309").is_err());
        assert!(Json::parse("-1e400").is_err());
        // …and values constructed in code still render as valid JSON.
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert!(Json::parse(&Json::Num(f64::NAN).render()).is_ok());
    }

    #[test]
    fn accessors_are_type_checked() {
        let v = Json::parse(r#"{"n":3,"s":"x","b":false,"f":1.5}"#).unwrap();
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("f").and_then(Json::as_u64), None);
        assert_eq!(v.get("f").and_then(Json::as_f64), Some(1.5));
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(false));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Null.get("x"), None);
    }
}
