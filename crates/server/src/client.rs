//! A blocking client library for the `cqd` daemon.
//!
//! [`Client`] wraps one TCP connection and exposes the wire protocol as
//! typed methods.  Every method sends one request line and reads response
//! lines until the request is answered (only [`Client::wait_with`] reads
//! more than one line).  The client is deliberately synchronous — the
//! daemon multiplexes concurrency server-side, so "more parallelism" is
//! spelled "more clients", exactly like the load generator does.

use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};

use cache::HitMiss;
use cachequery::{BackendError, QueryBackend, QueryConfig};
use mbl::{render_query, Query};

use crate::daemon::{resolve_with_limits, ResolvedSpec};
use crate::proto::{
    decode_response, encode_request, Request, Response, SessionSpec, WireCacheMap, WireJobStatus,
    WireMetric, WireNamespace, WireOutcome, WireReplay, WireSessionStats, WireStats,
};

/// Errors surfaced by [`Client`] calls.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed or was closed.
    Io(std::io::Error),
    /// The server sent something the protocol layer cannot decode, or a
    /// response of an unexpected kind.
    Protocol(String),
    /// The server answered with an `error` response.
    Server(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Identity reported by the server's `hello` handshake.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerInfo {
    /// Server name (`cqd`).
    pub server: String,
    /// Protocol version.
    pub proto: u64,
    /// Worker-pool size.
    pub workers: u64,
}

/// Everything the `stats` command reports.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerStats {
    /// Daemon-wide counters.
    pub global: WireStats,
    /// The calling session's counters.
    pub session: WireSessionStats,
    /// Per-namespace entry counts of the shared query store.
    pub namespaces: Vec<WireNamespace>,
}

/// One blocking `cqd` session.
///
/// See the [crate documentation](crate) for an end-to-end example.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// Propagates connection errors.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { reader, writer })
    }

    fn send(&mut self, request: &Request) -> Result<(), ClientError> {
        let mut line = encode_request(request);
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        Ok(())
    }

    fn read_response(&mut self) -> Result<Response, ClientError> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ClientError::Protocol(
                "server closed the connection".to_string(),
            ));
        }
        decode_response(&line).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    fn roundtrip(&mut self, request: &Request) -> Result<Response, ClientError> {
        self.send(request)?;
        match self.read_response()? {
            Response::Error { message } => Err(ClientError::Server(message)),
            response => Ok(response),
        }
    }

    fn unexpected<T>(response: Response) -> Result<T, ClientError> {
        Err(ClientError::Protocol(format!(
            "unexpected response: {response:?}"
        )))
    }

    /// Performs the handshake.
    ///
    /// # Errors
    ///
    /// Fails on connection or protocol errors.
    pub fn hello(&mut self) -> Result<ServerInfo, ClientError> {
        match self.roundtrip(&Request::Hello)? {
            Response::Hello {
                server,
                proto,
                workers,
            } => Ok(ServerInfo {
                server,
                proto,
                workers,
            }),
            other => Self::unexpected(other),
        }
    }

    /// Replaces the session's backend/target configuration.
    ///
    /// # Errors
    ///
    /// Fails if the server rejects the configuration.
    pub fn target(&mut self, spec: &SessionSpec) -> Result<String, ClientError> {
        match self.roundtrip(&Request::Target(spec.clone()))? {
            Response::Done { message } => Ok(message),
            other => Self::unexpected(other),
        }
    }

    /// Expands and runs one MBL expression.
    ///
    /// # Errors
    ///
    /// Fails if the expression is malformed or the backend rejects it.
    pub fn query(&mut self, mbl: &str) -> Result<Vec<WireOutcome>, ClientError> {
        match self.roundtrip(&Request::Query {
            mbl: mbl.to_string(),
        })? {
            Response::Outcomes { results } => Ok(results),
            other => Self::unexpected(other),
        }
    }

    /// Runs several MBL expressions; results are grouped per expression.
    ///
    /// # Errors
    ///
    /// Fails at the first failing expression.
    pub fn batch(&mut self, exprs: &[&str]) -> Result<Vec<Vec<WireOutcome>>, ClientError> {
        match self.roundtrip(&Request::Batch {
            exprs: exprs.iter().map(|e| e.to_string()).collect(),
        })? {
            Response::Batch { groups } => Ok(groups),
            other => Self::unexpected(other),
        }
    }

    /// Sends one line of the REPL command language and returns the raw
    /// response (`Done` for configuration commands, `Outcomes` for queries).
    ///
    /// # Errors
    ///
    /// Fails if the server rejects the command.
    pub fn repl(&mut self, line: &str) -> Result<Response, ClientError> {
        self.roundtrip(&Request::Repl {
            line: line.to_string(),
        })
    }

    /// Starts a `POLICY@ASSOC` learning job; returns its id.
    ///
    /// # Errors
    ///
    /// Fails if the spec is malformed or over the server's limits.
    pub fn learn(&mut self, spec: &str) -> Result<u64, ClientError> {
        match self.roundtrip(&Request::Learn {
            spec: spec.to_string(),
        })? {
            Response::JobStarted { id } => Ok(id),
            other => Self::unexpected(other),
        }
    }

    /// Replays a synthetic trace server-side against a policy simulator —
    /// and, when `job` names a finished `learn` job, differentially against
    /// its learned machine.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or a server-side `error` response (bad
    /// spec, unknown generator, unknown or unfinished job).
    pub fn replay(
        &mut self,
        spec: &str,
        generator: &str,
        accesses: u64,
        lines: u64,
        seed: u64,
        job: Option<u64>,
    ) -> Result<WireReplay, ClientError> {
        match self.roundtrip(&Request::Replay {
            spec: spec.to_string(),
            generator: generator.to_string(),
            accesses,
            lines,
            seed,
            job,
        })? {
            Response::Replay(replay) => Ok(replay),
            other => Self::unexpected(other),
        }
    }

    /// Maps the first `sets` sets of a simulated CPU's last-level cache
    /// server-side: leader detection, per-group learning through the
    /// daemon's shared store, follower flip probes.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or a server-side `error` response (unknown
    /// model, CAT out of range, associativity over the server's learning
    /// limit).
    pub fn map(
        &mut self,
        model: &str,
        seed: u64,
        cat: Option<u64>,
        slice: u64,
        sets: u64,
    ) -> Result<WireCacheMap, ClientError> {
        match self.roundtrip(&Request::Map {
            model: model.to_string(),
            seed,
            cat,
            slice,
            sets,
        })? {
            Response::Map(map) => Ok(map),
            other => Self::unexpected(other),
        }
    }

    /// Polls a job's status once.
    ///
    /// # Errors
    ///
    /// Fails if the job id is unknown.
    pub fn job(&mut self, id: u64) -> Result<WireJobStatus, ClientError> {
        match self.roundtrip(&Request::Job { id })? {
            Response::JobStatus(status) => Ok(status),
            other => Self::unexpected(other),
        }
    }

    /// Blocks until a job finishes, invoking `on_status` for every streamed
    /// status line (including the final one), and returns the final status.
    ///
    /// # Errors
    ///
    /// Fails if the job id is unknown or the connection drops mid-stream.
    pub fn wait_with(
        &mut self,
        id: u64,
        mut on_status: impl FnMut(&WireJobStatus),
    ) -> Result<WireJobStatus, ClientError> {
        self.send(&Request::Wait { id })?;
        loop {
            match self.read_response()? {
                Response::JobStatus(status) => {
                    on_status(&status);
                    if status.finished {
                        return Ok(status);
                    }
                }
                Response::Error { message } => return Err(ClientError::Server(message)),
                other => return Self::unexpected(other),
            }
        }
    }

    /// Blocks until a job finishes and returns the final status.
    ///
    /// # Errors
    ///
    /// Same as [`Client::wait_with`].
    pub fn wait(&mut self, id: u64) -> Result<WireJobStatus, ClientError> {
        self.wait_with(id, |_| {})
    }

    /// Fetches global metrics, per-session metrics and the query store's
    /// per-namespace breakdown.
    ///
    /// # Errors
    ///
    /// Fails on connection or protocol errors.
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        match self.roundtrip(&Request::Stats)? {
            Response::Stats {
                global,
                session,
                namespaces,
            } => Ok(ServerStats {
                global,
                session,
                namespaces,
            }),
            other => Self::unexpected(other),
        }
    }

    /// Scrapes the daemon's metrics registry: the Prometheus-style text
    /// exposition plus the same metrics as typed snapshots.
    ///
    /// # Errors
    ///
    /// Fails on connection or protocol errors.
    pub fn metrics(&mut self) -> Result<(String, Vec<WireMetric>), ClientError> {
        match self.roundtrip(&Request::Metrics)? {
            Response::Metrics { text, metrics } => Ok((text, metrics)),
            other => Self::unexpected(other),
        }
    }

    /// Asks the daemon to flush its durable store's record log and write a
    /// compacted snapshot, blocking until both are on disk.  Returns the
    /// daemon's confirmation message (a no-op notice on a memory-only
    /// daemon).
    ///
    /// # Errors
    ///
    /// Fails on connection or protocol errors.
    pub fn persist(&mut self) -> Result<String, ClientError> {
        match self.roundtrip(&Request::Persist)? {
            Response::Done { message } => Ok(message),
            other => Self::unexpected(other),
        }
    }

    /// Closes the session politely.
    ///
    /// # Errors
    ///
    /// Fails on connection or protocol errors.
    pub fn quit(mut self) -> Result<(), ClientError> {
        match self.roundtrip(&Request::Quit)? {
            Response::Bye => Ok(()),
            other => Self::unexpected(other),
        }
    }
}

/// A [`QueryBackend`] over one `cqd` session: the scarce oracle lives on the
/// other end of a TCP connection.
///
/// With a `RemoteBackend` inside a [`QueryEngine`](cachequery::QueryEngine),
/// the *whole* local query path — MBL expansion, the memoizing store, even
/// `polca::learn_policy` — runs unchanged against a remote daemon:
/// distributed learning is just another backend.  Engine batches
/// ([`QueryEngine::run_many`](cachequery::QueryEngine::run_many)) become one
/// `batch` request, so bulk fills cost a single round trip; single probes
/// (the learning path) first consult the client-side store, which absorbs
/// the replay-session blowup before anything touches the network.
///
/// `Clone` produces a *lazily connected* backend for the same daemon and
/// session spec (a protocol stream cannot be shared between workers): the
/// clone opens its own connection on first use, and a daemon that has gone
/// away surfaces as a [`BackendError::Service`] on the next query, never as
/// a panic.  Clones that are only held for their shared counters (e.g. the
/// statistics handle `learn_policy` retains) cost no connection at all.
#[derive(Debug)]
pub struct RemoteBackend {
    /// `None` until the first query after a `Clone` (lazy reconnect).
    client: Option<Client>,
    addr: SocketAddr,
    spec: SessionSpec,
    resolved: ResolvedSpec,
}

impl RemoteBackend {
    /// Connects to a daemon, performs the handshake and configures the
    /// session with `spec`.
    ///
    /// The memoization namespace and the target's associativity are resolved
    /// locally with the same rules the daemon applies, so a remote engine's
    /// store entries are interchangeable with the server's own.
    ///
    /// # Errors
    ///
    /// Fails on connection errors, on an invalid spec (rejected locally or
    /// by the server), and on protocol errors.
    pub fn connect(addr: impl ToSocketAddrs, spec: &SessionSpec) -> Result<Self, ClientError> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| ClientError::Protocol("address resolves to nothing".to_string()))?;
        // Validate locally first (assoc limits are the server's to enforce).
        let resolved = resolve_with_limits(spec, usize::MAX).map_err(ClientError::Server)?;
        let client = Self::open_session(addr, spec)?;
        Ok(RemoteBackend {
            client: Some(client),
            addr,
            spec: spec.clone(),
            resolved,
        })
    }

    /// The daemon's address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    fn open_session(addr: SocketAddr, spec: &SessionSpec) -> Result<Client, ClientError> {
        let mut client = Client::connect(addr)?;
        client.hello()?;
        client.target(spec)?;
        Ok(client)
    }

    /// The live session, (re)connected on demand — which is how clones made
    /// for worker oracles come online.
    fn session(&mut self) -> Result<&mut Client, BackendError> {
        if self.client.is_none() {
            let client = Self::open_session(self.addr, &self.spec)
                .map_err(|e| BackendError::Service(e.to_string()))?;
            self.client = Some(client);
        }
        Ok(self.client.as_mut().expect("session was just established"))
    }

    fn parse_outcome(outcome: &WireOutcome) -> (Vec<HitMiss>, bool) {
        let outcomes = outcome
            .pattern
            .chars()
            .map(|c| {
                if c == 'H' {
                    HitMiss::Hit
                } else {
                    HitMiss::Miss
                }
            })
            .collect();
        (outcomes, outcome.consistent)
    }
}

impl Clone for RemoteBackend {
    fn clone(&self) -> Self {
        RemoteBackend {
            client: None,
            addr: self.addr,
            spec: self.spec.clone(),
            resolved: self.resolved.clone(),
        }
    }
}

impl QueryBackend for RemoteBackend {
    fn execute(&mut self, query: &Query) -> Result<(Vec<HitMiss>, bool), BackendError> {
        // A rendered concrete query contains no macros, so the server-side
        // expansion is the identity.
        let rendered = render_query(query);
        let results = self
            .session()?
            .query(&rendered)
            .map_err(|e| BackendError::Service(e.to_string()))?;
        match results.as_slice() {
            [outcome] => Ok(Self::parse_outcome(outcome)),
            other => Err(BackendError::Service(format!(
                "server answered a concrete query with {} results",
                other.len()
            ))),
        }
    }

    fn execute_batch(
        &mut self,
        queries: &[Query],
    ) -> Result<Vec<(Vec<HitMiss>, bool)>, BackendError> {
        if queries.is_empty() {
            return Ok(Vec::new());
        }
        let rendered: Vec<String> = queries.iter().map(render_query).collect();
        let exprs: Vec<&str> = rendered.iter().map(String::as_str).collect();
        // One `batch` request answers the whole bulk fill in one round trip.
        let groups = self
            .session()?
            .batch(&exprs)
            .map_err(|e| BackendError::Service(e.to_string()))?;
        if groups.len() != queries.len() {
            return Err(BackendError::Service(format!(
                "server answered a {}-query batch with {} groups",
                queries.len(),
                groups.len()
            )));
        }
        groups
            .iter()
            .map(|group| match group.as_slice() {
                [outcome] => Ok(Self::parse_outcome(outcome)),
                other => Err(BackendError::Service(format!(
                    "server answered a concrete query with {} results",
                    other.len()
                ))),
            })
            .collect()
    }

    fn config(&self) -> Result<QueryConfig, BackendError> {
        Ok(self.resolved.config())
    }

    fn associativity(&self) -> Result<usize, BackendError> {
        Ok(self.resolved.assoc)
    }

    fn handles_repetitions(&self) -> bool {
        // The daemon's own engine performs the `reps` majority vote; voting
        // again client-side would multiply every novel query's round trips.
        true
    }
}
