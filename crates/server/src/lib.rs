//! `cqd`: a multi-session CacheQuery server with a shared result cache.
//!
//! The original CacheQuery frontend (§4.2 of the paper) is a *service*: it
//! multiplexes interactive and batch clients over one scarce hardware
//! backend, memoizes every answer in LevelDB, and batches queries.  This
//! crate reproduces that shape at campaign scale on top of the simulated
//! machines:
//!
//! * [`spawn`] starts **`cqd`**, a std-only TCP daemon speaking a
//!   newline-delimited JSON protocol ([`proto`]); each connection is one
//!   session with its own backend/target configuration — a simulated
//!   machine, or a bare simulated replacement policy (`policy: POLICY@ASSOC`);
//! * sessions are multiplexed onto a pool of
//!   [`cachequery::QueryEngine`]-wrapped backends (one per backend identity)
//!   through a bounded worker queue — full queue means blocked senders,
//!   which is the backpressure;
//! * every engine of the pool shares the daemon's one [`QueryStore`] (the
//!   prefix-trie memoization layer of the unified query path), so identical
//!   (or prefix-overlapping) MBL expansions from different clients are
//!   answered from memory instead of the backend — the LevelDB role of the
//!   original, with structural sharing;
//! * `learn POLICY@ASSOC` runs the `polca` pipeline as an asynchronous job
//!   *through the same store*: campaign answers are served to (and from)
//!   interactive sessions, and `job`/`wait` stream live progress;
//! * [`Client`] is the blocking client library, [`RemoteBackend`] turns one
//!   session into a [`cachequery::QueryBackend`] — so `polca::learn_policy`
//!   runs unchanged against a remote daemon — and the `loadgen` binary in
//!   the `bench` crate measures both query throughput and the overhead of
//!   learning over the network.
//!
//! # Quickstart
//!
//! ```
//! use server::{spawn, Client, CqdConfig};
//!
//! // An in-process daemon on an ephemeral port…
//! let daemon = spawn(CqdConfig::default()).unwrap();
//! let mut client = Client::connect(daemon.addr()).unwrap();
//! assert_eq!(client.hello().unwrap().server, "cqd");
//!
//! // …answers MBL queries for the default target (simulated Skylake L1):
//! // fill the set, touch A again, profile it.
//! let results = client.query("A B C A?").unwrap();
//! assert_eq!(results[0].pattern, "H");
//!
//! // A second session asking the same question is served from the shared
//! // store without touching the backend.
//! let mut other = Client::connect(daemon.addr()).unwrap();
//! let again = other.query("A B C A?").unwrap();
//! assert!(again[0].cached);
//! assert_eq!(again[0].pattern, "H");
//!
//! client.quit().unwrap();
//! other.quit().unwrap();
//! daemon.shutdown();
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod client;
pub mod daemon;
pub mod json;
mod metrics;
pub mod proto;

pub use cachequery::{QueryStore, StoreSpace};
pub use client::{Client, ClientError, RemoteBackend, ServerInfo, ServerStats};
pub use daemon::{spawn, CqdConfig, CqdHandle};
pub use json::{Json, JsonError};
pub use metrics::ServerMetrics;
pub use proto::{
    decode_request, decode_response, encode_request, encode_response, ProtoError, Request,
    Response, SessionSpec, WireCacheMap, WireJobStatus, WireMapGroup, WireMapSet, WireMetric,
    WireNamespace, WireOutcome, WirePhase, WireReplay, WireSessionStats, WireStats,
    PROTOCOL_VERSION,
};
