//! `cqd`: a multi-session CacheQuery server with a shared result cache.
//!
//! The original CacheQuery frontend (§4.2 of the paper) is a *service*: it
//! multiplexes interactive and batch clients over one scarce hardware
//! backend, memoizes every answer in LevelDB, and batches queries.  This
//! crate reproduces that shape at campaign scale on top of the simulated
//! machines:
//!
//! * [`spawn`] starts **`cqd`**, a std-only TCP daemon speaking a
//!   newline-delimited JSON protocol ([`proto`]); each connection is one
//!   session with its own backend/target configuration;
//! * sessions are multiplexed onto a pool of `CacheQuery` instances (one
//!   per CPU model × seed × CAT restriction) through a bounded worker
//!   queue — full queue means blocked senders, which is the backpressure;
//! * the [`SharedQueryStore`] deduplicates work *across sessions*: it lifts
//!   the learning subsystem's prefix-trie [`learning::QueryCache`] to whole
//!   concrete queries, so identical (or prefix-overlapping) MBL expansions
//!   from different clients are answered from memory instead of the
//!   backend — the LevelDB role of the original, with structural sharing;
//! * `learn POLICY@ASSOC` runs the `polca` pipeline as an asynchronous job
//!   whose status can be polled (`job`) or streamed (`wait`);
//! * [`Client`] is the blocking client library, and the `loadgen` binary in
//!   the `bench` crate drives K concurrent clients against an in-process
//!   daemon to measure throughput, latency and the cross-session hit-rate.
//!
//! # Quickstart
//!
//! ```
//! use server::{spawn, Client, CqdConfig};
//!
//! // An in-process daemon on an ephemeral port…
//! let daemon = spawn(CqdConfig::default()).unwrap();
//! let mut client = Client::connect(daemon.addr()).unwrap();
//! assert_eq!(client.hello().unwrap().server, "cqd");
//!
//! // …answers MBL queries for the default target (simulated Skylake L1):
//! // fill the set, touch A again, profile it.
//! let results = client.query("A B C A?").unwrap();
//! assert_eq!(results[0].pattern, "H");
//!
//! // A second session asking the same question is served from the shared
//! // store without touching the backend.
//! let mut other = Client::connect(daemon.addr()).unwrap();
//! let again = other.query("A B C A?").unwrap();
//! assert!(again[0].cached);
//! assert_eq!(again[0].pattern, "H");
//!
//! client.quit().unwrap();
//! other.quit().unwrap();
//! daemon.shutdown();
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod client;
pub mod daemon;
pub mod json;
mod metrics;
pub mod proto;
pub mod store;

pub use client::{Client, ClientError, ServerInfo};
pub use daemon::{spawn, CqdConfig, CqdHandle};
pub use json::{Json, JsonError};
pub use proto::{
    decode_request, decode_response, encode_request, encode_response, ProtoError, Request,
    Response, SessionSpec, WireJobStatus, WireOutcome, WireSessionStats, WireStats,
    PROTOCOL_VERSION,
};
pub use store::{SharedQueryStore, StoreKey};
