//! The shared cross-session query store: the LevelDB role of §4.2, lifted
//! onto the prefix-trie cache of the learning subsystem.
//!
//! The original frontend memoizes every query response in LevelDB so that
//! repeated queries — from the same client or a different one — never touch
//! the scarce hardware backend again.  This reproduction goes one step
//! further: instead of a flat key-value map it reuses
//! [`learning::QueryCache`], the thread-safe arena-backed prefix trie built
//! for membership queries in PR 2.  Because a query's profiled outcomes are
//! *prefix-consistent* — the hit/miss classification of access `i` depends
//! only on the reset state and the accesses before it, never on what comes
//! after — recording one concrete query also answers every prefix of it, and
//! overlapping expansions from different sessions share trie nodes instead
//! of duplicating whole key strings.
//!
//! The store is namespaced by [`StoreKey`]: the full backend configuration
//! (CPU model, seed, CAT restriction, reset sequence, repetitions) plus the
//! target cache set.  Two sessions share answers exactly when the backend
//! would have executed their queries identically.
//!
//! Only *consistent* answers (all repetitions agreed) are shared; a degraded
//! majority vote is returned to its requester but never memoized, so noise
//! cannot be frozen into the store.  A recording that contradicts an earlier
//! one (the nondeterminism signal of §7.1) is dropped and counted in
//! [`SharedQueryStore::conflicts`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use cache::{HitMiss, LevelId};
use hardware::CpuModel;
use learning::QueryCache;
use mbl::{MemOp, Query, Tag};

/// The namespace of one backend configuration: answers are shared between
/// sessions if and only if their keys are equal.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StoreKey {
    /// CPU model of the simulated machine.
    pub model: CpuModel,
    /// Seed of the simulated machine.
    pub seed: u64,
    /// CAT restriction of the last-level cache, if any.
    pub cat: Option<usize>,
    /// Rendered reset sequence.
    pub reset: String,
    /// Repetitions of the majority vote.
    pub reps: usize,
    /// Target cache level.
    pub level: LevelId,
    /// Target set index.
    pub set: usize,
    /// Target slice index.
    pub slice: usize,
}

/// One namespace's trie: symbols are whole memory operations (block + tag),
/// outputs are the classification of the access (`None` for unprofiled and
/// invalidating operations).
type Space = QueryCache<MemOp, Option<HitMiss>>;

/// A concurrent, namespaced memoization store for concrete query outcomes,
/// shared by every session of a `cqd` daemon.
///
/// # Example
///
/// ```
/// use cache::{HitMiss, LevelId};
/// use hardware::CpuModel;
/// use mbl::expand_query;
/// use server::{SharedQueryStore, StoreKey};
///
/// let store = SharedQueryStore::new();
/// let key = StoreKey {
///     model: CpuModel::SkylakeI5_6500,
///     seed: 7,
///     cat: None,
///     reset: "F+R".to_string(),
///     reps: 3,
///     level: LevelId::L1,
///     set: 0,
///     slice: 0,
/// };
/// let query = &expand_query("A B A?", 8).unwrap()[0];
/// assert_eq!(store.lookup(&key, query), None);
/// store.record(&key, query, &[HitMiss::Hit], true);
/// // The query itself — and any prefix of it — now hits.
/// assert_eq!(store.lookup(&key, query), Some(vec![HitMiss::Hit]));
/// let prefix = &expand_query("A B", 8).unwrap()[0];
/// assert_eq!(store.lookup(&key, prefix), Some(vec![]));
/// ```
#[derive(Debug, Default)]
pub struct SharedQueryStore {
    spaces: RwLock<HashMap<StoreKey, Arc<Space>>>,
    conflicts: AtomicU64,
}

impl SharedQueryStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        SharedQueryStore::default()
    }

    /// The trie for `key`, created on first use.
    fn space(&self, key: &StoreKey) -> Arc<Space> {
        if let Some(space) = self.spaces.read().expect("store lock poisoned").get(key) {
            return Arc::clone(space);
        }
        let mut spaces = self.spaces.write().expect("store lock poisoned");
        Arc::clone(
            spaces
                .entry(key.clone())
                .or_insert_with(|| Arc::new(QueryCache::new())),
        )
    }

    /// Returns the memoized profiled outcomes of `query` under `key`, if the
    /// whole access sequence is cached.
    ///
    /// Served answers are always consistent (inconsistent runs are never
    /// recorded).
    pub fn lookup(&self, key: &StoreKey, query: &Query) -> Option<Vec<HitMiss>> {
        let outputs = self.space(key).lookup(query)?;
        Some(outputs.into_iter().flatten().collect())
    }

    /// Records the profiled `outcomes` of `query` under `key`.
    ///
    /// `consistent == false` runs are skipped (returning `false`): a
    /// degraded majority vote must not be served to other sessions as a
    /// clean answer.  A recording that contradicts an existing entry is
    /// dropped and counted as a conflict.  Returns whether the answer was
    /// stored.
    pub fn record(
        &self,
        key: &StoreKey,
        query: &Query,
        outcomes: &[HitMiss],
        consistent: bool,
    ) -> bool {
        if !consistent {
            return false;
        }
        let profiled_ops = query
            .iter()
            .filter(|op| op.tag == Some(Tag::Profile))
            .count();
        if profiled_ops != outcomes.len() {
            // The outcome vector does not line up with the query's profiled
            // accesses; refusing to store is safer than storing garbage.
            self.conflicts.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let mut profiled = outcomes.iter();
        let outputs: Vec<Option<HitMiss>> = query
            .iter()
            .map(|op| {
                if op.tag == Some(Tag::Profile) {
                    profiled.next().copied()
                } else {
                    None
                }
            })
            .collect();
        match self.space(key).record(query, &outputs) {
            Ok(()) => true,
            Err(_) => {
                self.conflicts.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// Lookups served from memory, across all namespaces.
    pub fn hits(&self) -> u64 {
        self.fold(|s| s.hits())
    }

    /// Lookups that missed, across all namespaces.
    pub fn misses(&self) -> u64 {
        self.fold(|s| s.misses())
    }

    /// Distinct cached access prefixes (trie nodes), across all namespaces.
    pub fn entries(&self) -> u64 {
        self.fold(|s| s.entries())
    }

    /// Recordings dropped because they contradicted the store or were
    /// malformed.
    pub fn conflicts(&self) -> u64 {
        self.conflicts.load(Ordering::Relaxed)
    }

    /// Number of distinct backend configurations seen.
    pub fn namespaces(&self) -> usize {
        self.spaces.read().expect("store lock poisoned").len()
    }

    /// Fraction of lookups served from memory.
    pub fn hit_rate(&self) -> f64 {
        let (hits, misses) = (self.hits(), self.misses());
        if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        }
    }

    fn fold(&self, per_space: impl Fn(&Space) -> u64) -> u64 {
        self.spaces
            .read()
            .expect("store lock poisoned")
            .values()
            .map(|s| per_space(s))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbl::expand_query;

    fn key(set: usize) -> StoreKey {
        StoreKey {
            model: CpuModel::SkylakeI5_6500,
            seed: 7,
            cat: None,
            reset: "F+R".to_string(),
            reps: 3,
            level: LevelId::L1,
            set,
            slice: 0,
        }
    }

    fn concrete(mbl: &str) -> Query {
        let mut queries = expand_query(mbl, 8).unwrap();
        assert_eq!(queries.len(), 1);
        queries.pop().unwrap()
    }

    #[test]
    fn lookups_miss_until_recorded_and_namespaces_are_isolated() {
        let store = SharedQueryStore::new();
        let q = concrete("A B A?");
        assert_eq!(store.lookup(&key(0), &q), None);
        assert!(store.record(&key(0), &q, &[HitMiss::Hit], true));
        assert_eq!(store.lookup(&key(0), &q), Some(vec![HitMiss::Hit]));
        // A different target set is a different namespace.
        assert_eq!(store.lookup(&key(1), &q), None);
        assert_eq!(store.namespaces(), 2);
        assert_eq!(store.hits(), 1);
        assert_eq!(store.misses(), 2);
        assert!(store.hit_rate() > 0.0);
    }

    #[test]
    fn prefixes_of_recorded_queries_hit() {
        let store = SharedQueryStore::new();
        store.record(&key(0), &concrete("A? B? C?"), &[HitMiss::Miss; 3], true);
        assert_eq!(
            store.lookup(&key(0), &concrete("A? B?")),
            Some(vec![HitMiss::Miss, HitMiss::Miss])
        );
        // Same blocks, different tags: a different access sequence.
        assert_eq!(store.lookup(&key(0), &concrete("A B")), None);
    }

    #[test]
    fn inconsistent_answers_are_not_shared() {
        let store = SharedQueryStore::new();
        let q = concrete("A?");
        assert!(!store.record(&key(0), &q, &[HitMiss::Hit], false));
        assert_eq!(store.lookup(&key(0), &q), None);
    }

    #[test]
    fn contradictions_count_as_conflicts() {
        let store = SharedQueryStore::new();
        let q = concrete("A?");
        assert!(store.record(&key(0), &q, &[HitMiss::Hit], true));
        assert!(!store.record(&key(0), &q, &[HitMiss::Miss], true));
        assert_eq!(store.conflicts(), 1);
        // The original answer survives.
        assert_eq!(store.lookup(&key(0), &q), Some(vec![HitMiss::Hit]));
    }

    #[test]
    fn malformed_outcome_vectors_are_rejected() {
        let store = SharedQueryStore::new();
        let q = concrete("A? B?");
        assert!(!store.record(&key(0), &q, &[HitMiss::Hit], true));
        assert_eq!(store.conflicts(), 1);
    }

    #[test]
    fn concurrent_sessions_share_one_store() {
        let store = Arc::new(SharedQueryStore::new());
        std::thread::scope(|scope| {
            for t in 0..4 {
                let store = Arc::clone(&store);
                scope.spawn(move || {
                    let q = concrete(&format!("{} A?", mbl::block_name(mbl::BlockId(t + 1))));
                    store.record(&key(0), &q, &[HitMiss::Miss], true);
                });
            }
        });
        assert_eq!(
            store.entries(),
            8,
            "4 distinct 2-op queries, no sharing of the first op"
        );
    }
}
