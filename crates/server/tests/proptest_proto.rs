//! Property-based tests for the `cqd` wire protocol: every request and
//! response variant must survive encode → decode exactly, for arbitrary
//! field contents (including JSON-hostile strings).

use proptest::prelude::*;

use server::{
    decode_request, decode_response, encode_request, encode_response, Json, Request, Response,
    SessionSpec, WireCacheMap, WireJobStatus, WireMapGroup, WireMapSet, WireMetric, WireNamespace,
    WireOutcome, WirePhase, WireReplay, WireSessionStats, WireStats,
};

/// A string strategy that loves JSON metacharacters: quotes, backslashes,
/// braces, control characters, non-ASCII and astral-plane codepoints.
fn wire_string() -> impl Strategy<Value = String> {
    let ch = prop_oneof![
        Just('a'),
        Just('Z'),
        Just('0'),
        Just(' '),
        Just('"'),
        Just('\\'),
        Just('/'),
        Just('{'),
        Just('}'),
        Just('['),
        Just(','),
        Just(':'),
        Just('\n'),
        Just('\t'),
        Just('\r'),
        Just('\u{8}'),
        Just('\u{c}'),
        Just('\u{1}'),
        Just('ü'),
        Just('∘'),
        Just('🦀'),
    ];
    proptest::collection::vec(ch, 0..12).prop_map(|chars| chars.into_iter().collect())
}

fn session_spec() -> impl Strategy<Value = SessionSpec> {
    (
        prop_oneof![
            Just("skylake".to_string()),
            Just("haswell".to_string()),
            wire_string(),
        ],
        0u64..1000,
        (
            prop_oneof![
                Just("L1".to_string()),
                Just("L3".to_string()),
                wire_string()
            ],
            0u64..4096,
            0u64..8,
        ),
        prop_oneof![Just(None), (1u64..16).prop_map(Some)],
        1u64..9,
        (
            prop_oneof![Just("F+R".to_string()), wire_string()],
            prop_oneof![
                Just(None),
                Just(Some("LRU@4".to_string())),
                wire_string().prop_map(Some),
            ],
        ),
    )
        .prop_map(
            |(model, seed, (level, set, slice), cat, reps, (reset, policy))| SessionSpec {
                model,
                seed,
                level,
                set,
                slice,
                cat,
                reps,
                reset,
                policy,
            },
        )
}

fn request() -> impl Strategy<Value = Request> {
    prop_oneof![
        Just(Request::Hello),
        session_spec().prop_map(Request::Target),
        wire_string().prop_map(|mbl| Request::Query { mbl }),
        proptest::collection::vec(wire_string(), 0..4).prop_map(|exprs| Request::Batch { exprs }),
        wire_string().prop_map(|line| Request::Repl { line }),
        wire_string().prop_map(|spec| Request::Learn { spec }),
        (
            wire_string(),
            wire_string(),
            (0u64..1_000_000, 0u64..100_000, 0u64..1000),
            prop_oneof![Just(None), (0u64..100).prop_map(Some)],
        )
            .prop_map(|(spec, generator, (accesses, lines, seed), job)| {
                Request::Replay {
                    spec,
                    generator,
                    accesses,
                    lines,
                    seed,
                    job,
                }
            }),
        (
            wire_string(),
            0u64..1000,
            prop_oneof![Just(None), (1u64..16).prop_map(Some)],
            0u64..8,
            0u64..4096,
        )
            .prop_map(|(model, seed, cat, slice, sets)| Request::Map {
                model,
                seed,
                cat,
                slice,
                sets,
            }),
        (0u64..100).prop_map(|id| Request::Job { id }),
        (0u64..100).prop_map(|id| Request::Wait { id }),
        Just(Request::Stats),
        Just(Request::Metrics),
        Just(Request::Persist),
        Just(Request::Quit),
    ]
}

fn wire_outcome() -> impl Strategy<Value = WireOutcome> {
    (wire_string(), wire_string(), 0u64..2, 0u64..2).prop_map(
        |(query, pattern, consistent, cached)| WireOutcome {
            query,
            pattern,
            consistent: consistent == 1,
            cached: cached == 1,
        },
    )
}

fn phase() -> impl Strategy<Value = WirePhase> {
    (
        prop_oneof![
            Just("table_fill".to_string()),
            Just("closure".to_string()),
            Just("equivalence".to_string()),
            Just("identification".to_string()),
            wire_string(),
        ],
        0u64..5_000_000,
        0u64..100_000,
    )
        .prop_map(|(name, queries, millis)| WirePhase {
            name,
            queries,
            millis,
        })
}

fn job_status() -> impl Strategy<Value = WireJobStatus> {
    (
        0u64..100,
        prop_oneof![
            Just("running".to_string()),
            Just("done".to_string()),
            Just("failed".to_string()),
        ],
        wire_string(),
        0u64..2,
        (0u64..1000, 0u64..5_000_000, 0u64..100_000),
        (
            // Arbitrary finite f64 values round-trip (Rust renders the
            // shortest representation), but keep the strategy on
            // human-shaped rates.
            (0u64..=1000u64).prop_map(|thousandths| thousandths as f64 / 1000.0),
            proptest::collection::vec(phase(), 0..5),
        ),
    )
        .prop_map(
            |(id, state, detail, finished, (states, queries, millis), (hit_rate, phases))| {
                WireJobStatus {
                    id,
                    state,
                    detail,
                    finished: finished == 1,
                    states,
                    queries,
                    hit_rate,
                    millis,
                    phases,
                }
            },
        )
}

fn namespace() -> impl Strategy<Value = WireNamespace> {
    (
        wire_string(),
        0u64..100_000,
        0u64..10_000_000,
        0u64..100_000,
        0u64..100_000,
    )
        .prop_map(|(name, entries, bytes, hits, misses)| WireNamespace {
            name,
            entries,
            bytes,
            hits,
            misses,
        })
}

fn metric() -> impl Strategy<Value = WireMetric> {
    (
        (
            wire_string(),
            prop_oneof![
                Just("counter".to_string()),
                Just("gauge".to_string()),
                Just("histogram".to_string()),
            ],
        ),
        (0u64..1_000_000, 0u64..1_000_000_000),
        (0u64..1_000_000, 0u64..1_000_000),
        (0u64..1_000_000, 0u64..1_000_000, 0u64..1_000_000),
    )
        .prop_map(
            |((name, kind), (value, sum), (min, max), (p50, p90, p99))| WireMetric {
                name,
                kind,
                value,
                sum,
                min,
                max,
                p50,
                p90,
                p99,
            },
        )
}

fn wire_replay() -> impl Strategy<Value = WireReplay> {
    (
        (wire_string(), wire_string()),
        (
            0u64..1_000_000,
            0u64..1_000_000,
            0u64..1_000_000,
            0u64..1_000_000,
        ),
        (0u64..300, 0u64..1_000_000, 0u64..1_000_000),
        0u64..2,
        wire_string(),
    )
        .prop_map(
            |(
                (spec, generator),
                (accesses, sim_hits, sim_misses, sim_evictions),
                (machine_states, machine_hits, machine_misses),
                diverged,
                divergence,
            )| WireReplay {
                spec,
                generator,
                accesses,
                sim_hits,
                sim_misses,
                sim_evictions,
                machine_states,
                machine_hits,
                machine_misses,
                diverged: diverged == 1,
                divergence,
            },
        )
}

fn map_group() -> impl Strategy<Value = WireMapGroup> {
    (
        (
            prop_oneof![
                Just("thrash-vulnerable".to_string()),
                Just("thrash-resistant".to_string()),
                wire_string(),
            ],
            0u64..100,
            0u64..4096,
            0u64..8,
        ),
        wire_string(),
        prop_oneof![
            Just("learned".to_string()),
            Just("not-deterministic".to_string()),
            Just("failed".to_string()),
        ],
        (0u64..1000, 0u64..1_000_000),
        (wire_string(), 0u64..=1000, wire_string()),
    )
        .prop_map(
            |(
                (class, members, representative_set, representative_slice),
                namespace,
                outcome,
                (states, queries),
                (identified, disagreement_permille, detail),
            )| WireMapGroup {
                class,
                members,
                representative_set,
                representative_slice,
                namespace,
                outcome,
                states,
                queries,
                identified,
                disagreement_permille,
                detail,
            },
        )
}

fn map_set() -> impl Strategy<Value = WireMapSet> {
    (
        (0u64..4096, 0u64..8),
        prop_oneof![Just("adaptive".to_string()), wire_string()],
        prop_oneof![
            Just("fixed".to_string()),
            Just("fixed-nondet".to_string()),
            Just("adaptive".to_string()),
            Just("unmapped".to_string()),
        ],
        (wire_string(), 0u64..1000, 0u64..=1000),
        wire_string(),
    )
        .prop_map(
            |((set, slice), class, verdict, (policy, states, disagreement_permille), detail)| {
                WireMapSet {
                    set,
                    slice,
                    class,
                    verdict,
                    policy,
                    states,
                    disagreement_permille,
                    detail,
                }
            },
        )
}

fn cache_map() -> impl Strategy<Value = WireCacheMap> {
    (
        wire_string(),
        prop_oneof![Just("L3".to_string()), wire_string()],
        prop_oneof![Just(None), (1u64..16).prop_map(Some)],
        proptest::collection::vec(map_group(), 0..3),
        proptest::collection::vec(map_set(), 0..5),
    )
        .prop_map(|(model, level, cat, groups, sets)| WireCacheMap {
            model,
            level,
            cat,
            groups,
            sets,
        })
}

fn response() -> impl Strategy<Value = Response> {
    let stats = (
        (0u64..10, 0u64..100),
        (0u64..100_000, 0u64..100_000),
        (0u64..100_000, 0u64..10, 0u64..10),
        (0u64..8, 1u64..9, 0u64..50),
        (
            0u64..100_000_000,
            (
                0u64..1_000_000_000,
                0u64..1_000_000_000,
                0u64..1_000_000_000,
            ),
        ),
        (
            (
                (0u64..100_000, 0u64..1_000_000),
                0u64..1000,
                0u64..100,
                0u64..=1000,
            ),
            (
                (0u64..1_000_000, 0u64..1000),
                (0u64..1_000_000, 0u64..1000),
                (0u64..100, 0u64..1_000_000),
                0u64..100,
            ),
        ),
    )
        .prop_map(
            |(
                (sessions_active, sessions_total),
                (queries, store_hits),
                (backend_queries, jobs_spawned, jobs_finished),
                (busy_workers, workers, store_conflicts),
                (uptime_ms, (request_p50_ns, request_p99_ns, request_max_ns)),
                (
                    (
                        (votes, vote_executions),
                        vote_escalations,
                        vote_unsettled,
                        vote_min_margin_permille,
                    ),
                    (
                        (store_entries, store_evictions),
                        (persist_appended, persist_dropped),
                        (persist_snapshots, persist_replayed),
                        lock_poisoned,
                    ),
                ),
            )| WireStats {
                sessions_active,
                sessions_total,
                queries,
                store_hits,
                backend_queries,
                uptime_ms,
                request_p50_ns,
                request_p99_ns,
                request_max_ns,
                jobs_spawned,
                jobs_finished,
                busy_workers,
                workers,
                store_conflicts,
                store_entries,
                store_evictions,
                persist_appended,
                persist_dropped,
                persist_snapshots,
                persist_replayed,
                lock_poisoned,
                votes,
                vote_executions,
                vote_escalations,
                vote_unsettled,
                vote_min_margin_permille,
            },
        );
    prop_oneof![
        (wire_string(), 0u64..10, 0u64..8).prop_map(|(server, proto, workers)| Response::Hello {
            server,
            proto,
            workers
        }),
        wire_string().prop_map(|message| Response::Done { message }),
        proptest::collection::vec(wire_outcome(), 0..4)
            .prop_map(|results| Response::Outcomes { results }),
        proptest::collection::vec(proptest::collection::vec(wire_outcome(), 0..3), 0..3)
            .prop_map(|groups| Response::Batch { groups }),
        (0u64..100).prop_map(|id| Response::JobStarted { id }),
        job_status().prop_map(Response::JobStatus),
        wire_replay().prop_map(Response::Replay),
        cache_map().prop_map(Response::Map),
        (
            stats,
            (0u64..1000, 0u64..1000),
            proptest::collection::vec(namespace(), 0..4),
        )
            .prop_map(|(global, (queries, store_hits), namespaces)| {
                Response::Stats {
                    global,
                    session: WireSessionStats {
                        queries,
                        store_hits,
                    },
                    namespaces,
                }
            }),
        (wire_string(), proptest::collection::vec(metric(), 0..4))
            .prop_map(|(text, metrics)| Response::Metrics { text, metrics }),
        wire_string().prop_map(|message| Response::Error { message }),
        Just(Response::Bye),
    ]
}

/// A strategy over arbitrary JSON value trees (depth-bounded).
fn json_value() -> impl Strategy<Value = Json> {
    let leaf = prop_oneof![
        Just(Json::Null),
        Just(Json::Bool(true)),
        Just(Json::Bool(false)),
        (0u64..1_000_000).prop_map(|n| Json::Num(n as f64)),
        Just(Json::Num(-2.5)),
        wire_string().prop_map(Json::Str),
    ];
    let inner = leaf.clone().boxed();
    prop_oneof![
        leaf,
        proptest::collection::vec(inner.clone(), 0..4).prop_map(Json::Arr),
        proptest::collection::vec((wire_string(), inner), 0..4).prop_map(|pairs| {
            // Duplicate keys would make `get`-based decoding ambiguous; the
            // protocol never produces them, so neither does the strategy.
            let mut seen = std::collections::HashSet::new();
            Json::Obj(
                pairs
                    .into_iter()
                    .filter(|(k, _)| seen.insert(k.clone()))
                    .collect(),
            )
        }),
    ]
}

proptest! {
    /// Every request survives one encode → decode round trip.
    #[test]
    fn requests_round_trip(request in request()) {
        let line = encode_request(&request);
        prop_assert!(!line.contains('\n'), "encoded request spans lines: {line}");
        let decoded = decode_request(&line);
        prop_assert_eq!(decoded.unwrap(), request);
    }

    /// Every response survives one encode → decode round trip.
    #[test]
    fn responses_round_trip(response in response()) {
        let line = encode_response(&response);
        prop_assert!(!line.contains('\n'), "encoded response spans lines: {line}");
        let decoded = decode_response(&line);
        prop_assert_eq!(decoded.unwrap(), response);
    }

    /// The JSON layer itself round-trips arbitrary value trees, and
    /// rendering is deterministic.
    #[test]
    fn json_round_trips(value in json_value()) {
        let rendered = value.render();
        let parsed = Json::parse(&rendered).unwrap();
        prop_assert_eq!(&parsed, &value);
        prop_assert_eq!(parsed.render(), rendered);
    }
}
