//! Crash-recovery integration test: a real `cqd` process with a durable
//! store is killed with SIGKILL mid-campaign, restarted over the same
//! directory, and must serve the previously persisted campaign entirely
//! from memory — zero re-executed backend queries.
//!
//! The re-execution pin uses the store's own namespace counters: in the
//! unified query path a store *miss* is exactly what triggers a backend
//! execution, so a warm re-run of a fully persisted campaign must leave
//! the campaign namespace at zero misses.

use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

use server::Client;

/// Spawns a durable `cqd` on an ephemeral port and parses its bound
/// address from stdout.
fn spawn_daemon(store_dir: &Path) -> (Child, SocketAddr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_cqd"))
        .args(["--addr", "127.0.0.1:0", "--store-dir"])
        .arg(store_dir)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .stdin(Stdio::null())
        .spawn()
        .expect("spawn cqd");
    let stdout = child.stdout.take().expect("cqd stdout");
    let mut lines = BufReader::new(stdout).lines();
    let banner = lines
        .next()
        .expect("cqd printed a banner")
        .expect("read cqd banner");
    let addr = banner
        .strip_prefix("cqd listening on ")
        .unwrap_or_else(|| panic!("unexpected cqd banner: {banner}"))
        .parse()
        .expect("parse cqd address");
    (child, addr)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cq_persist_crash_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn a_killed_daemon_restarts_warm_and_reexecutes_nothing() {
    let dir = temp_dir("warm");

    // First life: learn LRU@4 to completion, make it durable, then die
    // abruptly in the middle of a second campaign.
    let (mut child, addr) = spawn_daemon(&dir);
    let (cold_states, cold_queries, namespace) = {
        let mut client = Client::connect(addr).expect("connect");
        let id = client.learn("lru@4").expect("start lru@4 campaign");
        let status = client.wait(id).expect("finish lru@4 campaign");
        assert_eq!(
            status.state, "done",
            "cold campaign failed: {}",
            status.detail
        );
        assert!(status.states > 0 && status.queries > 0);

        // Fsync the log and write a compacted snapshot; everything the
        // campaign recorded is now on disk.
        client.persist().expect("persist the store");
        let stats = client.stats().expect("stats");
        assert!(
            stats.global.persist_appended > 0,
            "campaign appended nothing"
        );
        assert!(
            stats.global.persist_snapshots > 0,
            "persist wrote no snapshot"
        );
        let namespace = stats
            .namespaces
            .iter()
            .find(|ns| ns.name.starts_with("policy:LRU@4"))
            .expect("campaign namespace in stats")
            .name
            .clone();

        // Kill -9 mid-campaign: the second job's unsynced tail may be
        // lost, the persisted first campaign must not be.
        let _ = client.learn("plru@4").expect("start doomed campaign");
        (status.states, status.queries, namespace)
    };
    child.kill().expect("SIGKILL cqd");
    child.wait().expect("reap cqd");

    // Second life over the same directory: replay must restore the store,
    // and re-running the same campaign must touch the backend zero times.
    let (mut child, addr) = spawn_daemon(&dir);
    let mut client = Client::connect(addr).expect("reconnect");
    let stats = client.stats().expect("stats after restart");
    assert!(
        stats.global.persist_replayed > 0,
        "restart replayed no records"
    );

    let id = client.learn("lru@4").expect("re-run lru@4 campaign");
    let status = client.wait(id).expect("finish warm campaign");
    assert_eq!(
        status.state, "done",
        "warm campaign failed: {}",
        status.detail
    );
    // Same machine, same membership-query count: recovery is exact.
    assert_eq!(status.states, cold_states);
    assert_eq!(status.queries, cold_queries);

    let stats = client.stats().expect("stats after warm campaign");
    let ns = stats
        .namespaces
        .iter()
        .find(|ns| ns.name == namespace)
        .expect("campaign namespace survived the crash");
    // The pin: every store lookup of the warm campaign hit. A miss is the
    // only thing that sends a query to the backend, so zero misses means
    // zero re-executed backend queries.
    assert_eq!(
        ns.misses, 0,
        "warm campaign fell through to the backend {} times",
        ns.misses
    );
    assert!(ns.hits > 0, "warm campaign never touched the store");

    drop(client);
    child.kill().expect("SIGKILL cqd");
    child.wait().expect("reap cqd");
    let _ = std::fs::remove_dir_all(&dir);
}
