#!/usr/bin/env bash
# Profile-guided-optimization build of the learning stack.
#
# Three steps:
#   1. build the bench binaries with `-Cprofile-generate`,
#   2. run the representative workloads (the full `table2 --max-assoc 4`
#      sweep plus the differential conformance harness) to collect profiles,
#   3. merge the profiles with llvm-profdata and rebuild with
#      `-Cprofile-use`.
#
# The instrumented and optimized artifacts live under their own target
# directories (`target/pgo-instrumented`, `target/pgo`) so a PGO build never
# dirties the normal `target/release` cache.  The final binaries land in
# target/pgo/release/.
#
# PGO changes *codegen only*: the optimized binaries must still reproduce
# every pinned state/query count bit for bit, which the perfgate run at the
# end enforces.  Typical gain on the table2 sweep is in the 5-15% range —
# worth taking on a dedicated measurement box, not worth gating CI on.
#
# Usage: scripts/pgo.sh [--skip-gate]
#   --skip-gate   skip the final perfgate verification run

set -euo pipefail
cd "$(dirname "$0")/.."

SKIP_GATE=0
for arg in "$@"; do
    case "$arg" in
        --skip-gate) SKIP_GATE=1 ;;
        *) echo "unknown argument: $arg" >&2; exit 2 ;;
    esac
done

# llvm-profdata: prefer the rustup llvm-tools component (guaranteed to match
# rustc's LLVM), fall back to the system binary.  A system binary from an
# older LLVM than rustc's cannot read the emitted .profraw files — the merge
# step below diagnoses that case.
sysroot="$(rustc --print sysroot)"
PROFDATA="$(find "$sysroot" -name llvm-profdata -type f 2>/dev/null | head -n1 || true)"
if [ -z "$PROFDATA" ]; then
    PROFDATA="$(command -v llvm-profdata || true)"
fi
if [ -z "$PROFDATA" ]; then
    echo "llvm-profdata not found." >&2
    echo "Install it with: rustup component add llvm-tools" >&2
    exit 1
fi
echo "using profdata: $PROFDATA"
echo "rustc $(rustc -vV | sed -n 's/^LLVM version: /uses LLVM /p')"

PROFILE_DIR="$PWD/target/pgo-profiles"
rm -rf "$PROFILE_DIR"
mkdir -p "$PROFILE_DIR"

echo "== step 1/3: instrumented build =="
RUSTFLAGS="-Cprofile-generate=$PROFILE_DIR" \
    cargo build --release -p bench \
    --target-dir target/pgo-instrumented

echo "== step 2/3: profile workloads =="
# The table2 sweep is the hot path the optimization targets; the conformance
# harness additionally exercises every packed simulator and the Mealy
# product walk.
./target/pgo-instrumented/release/table2 --max-assoc 4 > /dev/null
./target/pgo-instrumented/release/conformance --steps 1000 --max-assoc 4 > /dev/null

if ! "$PROFDATA" merge -o "$PROFILE_DIR/merged.profdata" "$PROFILE_DIR"/*.profraw; then
    echo >&2
    echo "profile merge failed — llvm-profdata is probably older than the LLVM" >&2
    echo "inside rustc (see the versions above).  Install the matching tool:" >&2
    echo "    rustup component add llvm-tools" >&2
    exit 1
fi
echo "profiles merged: $PROFILE_DIR/merged.profdata"

echo "== step 3/3: optimized rebuild =="
RUSTFLAGS="-Cprofile-use=$PROFILE_DIR/merged.profdata" \
    cargo build --release -p bench \
    --target-dir target/pgo

echo
echo "PGO binaries: target/pgo/release/{table2,perfgate,conformance,...}"

if [ "$SKIP_GATE" = 1 ]; then
    exit 0
fi

echo "== verification: pinned counts through the PGO binary =="
# A generous time tolerance: this compares the PGO build against a baseline
# recorded by a plain release build, possibly on another machine.  The count
# comparison stays exact — that is the part PGO must not disturb.
./target/pgo/release/perfgate --time-tolerance 100 --json target/pgo/BENCH_learn.json
